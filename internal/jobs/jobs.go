// Package jobs is the job scheduler behind `graphsd serve`: a bounded
// worker pool with admission control in front of the engine. Requests are
// admitted against two budgets — queue depth and an aggregate memory
// estimate across queued and running jobs — then executed by a fixed number
// of workers, each job carrying a context so cancellation (client request,
// per-job timeout or deadline, server shutdown) stops the engine between
// sub-blocks.
//
// With a Journal configured the scheduler is durable: every submission is
// appended to the write-ahead log before it is acknowledged, every terminal
// state before it is reported, and a restarted scheduler replays the log —
// jobs that finished stay finished, jobs that never finished are re-queued,
// and jobs that were mid-run resume from their engine checkpoint (per-job
// directories under CheckpointRoot), producing results bit-identical to an
// uninterrupted run. Once the journal fails the scheduler sheds load
// (ErrUnavailable) instead of accepting work it cannot make durable.
//
// The scheduler is deliberately engine-agnostic: it runs any Runner, so its
// lifecycle, admission, recovery, and shutdown logic is testable without
// layouts.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/storage"
)

// State is a job's lifecycle state. Transitions are strictly
// Queued → Running → one of (Done, Failed, Cancelled, Expired), except that
// a queued job may go directly to Cancelled (drain, client cancel) or
// Expired (deadline passed before a worker picked it up).
type State int

const (
	Queued State = iota
	Running
	Done
	Failed
	Cancelled
	Expired
)

// String returns the lowercase state name used in the API and metrics.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	case Expired:
		return "expired"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// stateByName inverts String, for journal replay.
func stateByName(name string) (State, bool) {
	for _, s := range States {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// Final reports whether s is a terminal state.
func (s State) Final() bool {
	return s == Done || s == Failed || s == Cancelled || s == Expired
}

// States lists every lifecycle state, for metrics enumeration.
var States = []State{Queued, Running, Done, Failed, Cancelled, Expired}

// Request describes one job submission.
type Request struct {
	// Graph names a graph registered with the server.
	Graph string `json:"graph"`
	// Tenant is the submitting tenant ("" resolves to DefaultTenant). The
	// HTTP server sets it from the authenticated bearer token; it is
	// journaled with the submit record so fair-share accounting survives
	// restarts.
	Tenant string `json:"tenant,omitempty"`
	// Algorithm is an algorithms.ByName name (pr, bfs, cc, sssp, ...).
	Algorithm string `json:"algorithm"`
	// Source is the source vertex for traversal algorithms.
	Source uint32 `json:"source,omitempty"`
	// MaxIterations overrides the algorithm's iteration bound when positive.
	MaxIterations int `json:"max_iterations,omitempty"`
	// TimeoutMS cancels the job this many milliseconds after it starts
	// running. Zero selects the scheduler's DefaultTimeout (if any).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Deadline, when set, is the absolute wall-clock instant past which the
	// job is worthless: a queued job past it is expired instead of run, and
	// a running job's context is cancelled at it. Unlike TimeoutMS it
	// survives restarts — a recovered job past its journaled deadline is
	// expired at replay, not re-run.
	Deadline *time.Time `json:"deadline,omitempty"`
}

// deadlinePassed reports whether the request's deadline exists and is past.
func (r Request) deadlinePassed(now time.Time) bool {
	return r.Deadline != nil && now.After(*r.Deadline)
}

// RunInfo carries the per-job execution context a Runner needs beyond the
// request itself: identity, attempt number, checkpoint wiring, and the
// progress callback.
type RunInfo struct {
	// ID is the job's identifier and Attempt the 1-based execution attempt
	// (>1 after transient-failure retries).
	ID      string
	Attempt int
	// CheckpointDir is the job's private checkpoint directory ("" when
	// checkpointing is disabled) and CheckpointEvery the iteration interval
	// to checkpoint at. Resume asks the runner to restore any checkpoint
	// found there — always true under a CheckpointRoot, because a fresh
	// job's directory is empty and a recovered or retried job's holds
	// exactly the state to resume from.
	CheckpointDir   string
	CheckpointEvery int
	Resume          bool
	// OnIteration is invoked after each engine iteration for progress
	// reporting; implementations must pass it through to
	// core.Options.OnIteration (or call it themselves).
	OnIteration func(core.IterStat)
}

// Runner executes one admitted job.
type Runner func(ctx context.Context, req Request, info RunInfo) (*core.Result, error)

// Config sizes a Scheduler.
type Config struct {
	// Workers is the number of jobs executed concurrently. Minimum 1.
	Workers int
	// QueueDepth bounds the jobs admitted but not yet running. Minimum 1.
	// Recovered jobs re-queued at startup do not count against it.
	QueueDepth int
	// MemBudget, when positive, bounds the summed memory estimates of
	// queued and running jobs; submissions beyond it are rejected with
	// ErrMemBudget.
	MemBudget int64
	// EstimateBytes predicts a job's peak engine memory, consulted at
	// admission when MemBudget is set. Nil estimates zero.
	EstimateBytes func(Request) int64
	// Run executes one job. Required.
	Run Runner
	// Tenants configures multi-tenant admission: per-tenant quotas and
	// weighted fair-share dequeue. With tenants configured, submissions
	// naming an unknown tenant are rejected with ErrUnknownTenant. Empty
	// runs everything under DefaultTenant with no quotas (single-tenant
	// behaviour).
	Tenants []Tenant
	// RetainJobs, when positive, bounds the terminal (done/failed/
	// cancelled/expired) jobs kept in memory: once exceeded, the
	// oldest-finished jobs — and their full result payloads — are evicted.
	// Eviction is journal-consistent: a restarted scheduler replays every
	// journaled job and then applies the same policy, so the retained set
	// matches what an uninterrupted server would hold. Zero retains
	// everything (the pre-retention behaviour, which leaks on a
	// long-running server).
	RetainJobs int
	// Journal, when non-nil, makes the scheduler durable: submissions and
	// terminal states are journaled before acknowledgement, and New replays
	// the journal's recovered records (re-queueing unfinished jobs) before
	// the workers start.
	Journal *Journal
	// Retries re-runs a job up to this many extra attempts when it fails
	// with a transient storage error (storage.IsTransient). Permanent
	// failures and cancellations are never retried.
	Retries int
	// RetryBackoff is the pause before the first job-level retry, doubled
	// per attempt and capped at 32x. Zero selects 10ms.
	RetryBackoff time.Duration
	// DefaultTimeout bounds a job's running time when the request carries
	// no TimeoutMS of its own. Zero means no server-side timeout.
	DefaultTimeout time.Duration
	// CheckpointRoot, when set, gives every job a private checkpoint
	// directory <root>/<jobID> wired through RunInfo, and the scheduler
	// prunes it once the job's terminal record is durably journaled.
	CheckpointRoot string
	// CheckpointEvery is the iteration interval passed to runners; zero
	// with a CheckpointRoot selects 1 (checkpoint every iteration).
	CheckpointEvery int
	// CheckpointKeep retains the checkpoint directories of the last N
	// terminal jobs for debugging instead of pruning them immediately.
	CheckpointKeep int
}

// Admission errors. The server maps ErrQueueFull and ErrMemBudget to HTTP
// 429; ErrClosed and ErrUnavailable to 503 with a Retry-After.
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrMemBudget = errors.New("jobs: memory budget exhausted")
	ErrClosed    = errors.New("jobs: scheduler shut down")
	// ErrUnavailable rejects submissions the scheduler cannot make durable
	// (journal failed or draining); clients should retry against a healthy
	// replica or after the restart.
	ErrUnavailable = errors.New("jobs: not accepting jobs (journal unavailable)")
)

// Tenant admission errors; both map to HTTP 4xx in the server.
var (
	// ErrTenantQueueFull rejects a submission past the tenant's MaxQueued
	// quota (HTTP 429) while other tenants still admit fine.
	ErrTenantQueueFull = errors.New("jobs: tenant queue quota exhausted")
	// ErrUnknownTenant rejects a submission naming a tenant the scheduler
	// was not configured with (only when Config.Tenants is non-empty).
	ErrUnknownTenant = errors.New("jobs: unknown tenant")
)

// ErrNotFound reports an unknown job ID — including a terminal job already
// evicted by the retention policy.
var ErrNotFound = errors.New("jobs: no such job")

// ErrDeadlineExpired is the terminal error of a job that ran out of
// wall-clock deadline (Request.Deadline), distinct from a client cancel.
var ErrDeadlineExpired = errors.New("jobs: deadline expired")

// Job is one submitted request and its lifecycle. All fields are guarded by
// mu; read them through Status.
type Job struct {
	id  string
	req Request

	mu         sync.Mutex
	state      State
	err        error
	res        *core.Result
	iterations int
	activeVert int
	attempt    int
	submitted  time.Time
	started    time.Time
	finished   time.Time
	estBytes   int64
	recovered  bool // reconstructed from the journal at startup
	wasRunning bool // recovered job that had started before the crash

	ctx    context.Context
	cancel context.CancelFunc
}

// ID returns the job's deterministic identifier.
func (j *Job) ID() string { return j.id }

// Request returns the submission that created the job.
func (j *Job) Request() Request { return j.req }

// Recovered reports whether the job was reconstructed from the journal by a
// restarted scheduler.
func (j *Job) Recovered() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered
}

// Status is a point-in-time JSON-ready view of a job.
type Status struct {
	ID        string `json:"id"`
	Graph     string `json:"graph"`
	Tenant    string `json:"tenant,omitempty"`
	Algorithm string `json:"algorithm"`
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	// Iterations completed so far (live while running) and the active
	// vertex count entering the most recent iteration.
	Iterations int `json:"iterations"`
	ActiveVert int `json:"active_vertices,omitempty"`
	// Converged is meaningful once State is "done".
	Converged bool `json:"converged,omitempty"`
	// Attempt is the execution attempt count (>1 after retries); Recovered
	// marks a job replayed from the journal after a restart.
	Attempt   int  `json:"attempt,omitempty"`
	Recovered bool `json:"recovered,omitempty"`
	// Resumed reports that the run restored an engine checkpoint instead of
	// recomputing from iteration zero.
	Resumed bool `json:"resumed,omitempty"`
	// EstBytes is the admission-time memory estimate.
	EstBytes  int64  `json:"est_bytes,omitempty"`
	Submitted string `json:"submitted"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	Deadline  string `json:"deadline,omitempty"`
	// WaitMS/RunMS are queue latency and execution wall time.
	WaitMS int64 `json:"wait_ms"`
	RunMS  int64 `json:"run_ms,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.id,
		Graph:      j.req.Graph,
		Tenant:     j.req.Tenant,
		Algorithm:  j.req.Algorithm,
		State:      j.state.String(),
		Iterations: j.iterations,
		ActiveVert: j.activeVert,
		Attempt:    j.attempt,
		Recovered:  j.recovered,
		EstBytes:   j.estBytes,
		Submitted:  j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.req.Deadline != nil {
		st.Deadline = j.req.Deadline.UTC().Format(time.RFC3339Nano)
	}
	if j.res != nil {
		st.Converged = j.res.Converged
		st.Iterations = j.res.Iterations
		st.Resumed = j.res.Resumed
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
		st.WaitMS = j.started.Sub(j.submitted).Milliseconds()
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = end.Sub(j.started).Milliseconds()
	} else {
		st.WaitMS = time.Since(j.submitted).Milliseconds()
		if !j.finished.IsZero() { // cancelled or expired while queued
			st.WaitMS = j.finished.Sub(j.submitted).Milliseconds()
			st.RunMS = 0
		}
	}
	return st
}

// Result returns the completed run's result, or nil while the job is not
// Done — including a job that finished before a restart: the journal
// records outcomes, not result payloads, so a recovered Done job's values
// are gone.
func (j *Job) Result() *core.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done {
		return nil
	}
	return j.res
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// RecoveryStats reports what a restarted scheduler's journal replay did.
// Lost is the accounting invariant: submitted jobs the replay could neither
// finish nor re-queue — always zero unless the journal itself is corrupt
// beyond a torn tail.
type RecoveryStats struct {
	// Recovered counts journaled jobs that were already terminal; Requeued
	// those re-queued for (re-)execution, of which Resumable had started
	// before the crash and hold an engine checkpoint to resume from.
	Recovered int64 `json:"recovered"`
	Requeued  int64 `json:"requeued"`
	Resumable int64 `json:"resumable"`
	// Expired counts jobs whose deadline passed while the server was down.
	Expired int64 `json:"expired"`
	Lost    int64 `json:"lost"`
	// ReplaySeconds is the journal replay wall clock.
	ReplaySeconds float64 `json:"replay_seconds"`
}

// Scheduler is the bounded worker pool. Create with New, submit with
// Submit, stop with Close.
type Scheduler struct {
	cfg   Config
	depth int // global admission bound on queued jobs

	mu      sync.Mutex
	cond    *sync.Cond // workers wait here for runnable jobs
	tenants map[string]*tenantState
	tnames  []string // sorted tenant names, for deterministic dequeue
	// queuedLen is the total jobs sitting in tenant FIFOs; basePass is the
	// stride scheduler's global virtual time (see tenants.go).
	queuedLen int
	basePass  float64
	strict    bool // Config.Tenants was non-empty: unknown tenants rejected

	jobs     map[string]*Job
	order    []string // submission order, for listing
	terminal []string // terminal order, for retention eviction
	evicted  int64    // terminal jobs evicted by the retention policy
	seq      int64
	memUsed  int64
	closed   bool
	killed   bool            // abandoned by Kill: workers stop without journaling
	finished map[State]int64 // terminal-state counts, monotonic
	retried  int64           // job-level retry attempts
	expired  int64           // jobs expired past their deadline
	keptCk   []string        // terminal jobs whose checkpoint dirs are retained
	recovery RecoveryStats

	wg sync.WaitGroup
}

// New starts a scheduler with cfg.Workers workers. With cfg.Journal set it
// first replays the journal's recovered records: terminal jobs are restored
// for listing, unfinished jobs are re-queued (ahead of any new submission)
// and will resume from their checkpoints.
func New(cfg Config) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.Run == nil {
		panic("jobs: Config.Run is required")
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	if cfg.CheckpointRoot != "" && cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	s := &Scheduler{
		cfg:      cfg,
		depth:    cfg.QueueDepth,
		tenants:  make(map[string]*tenantState),
		strict:   len(cfg.Tenants) > 0,
		jobs:     make(map[string]*Job),
		finished: make(map[State]int64),
	}
	s.cond = sync.NewCond(&s.mu)
	for _, tc := range cfg.Tenants {
		t := s.tenantLocked(tc.Name) // pre-workers: no locking needed yet
		t.cfg = tc
	}
	var requeue []*Job
	if cfg.Journal != nil {
		requeue = s.replay(cfg.Journal.ConsumeReplay())
	}
	// Recovered jobs re-enter their tenants' queues ahead of new
	// submissions, bypassing admission quotas: they were admitted once.
	for _, j := range requeue {
		t := s.tenantLocked(j.req.Tenant)
		s.enqueueLocked(t, j)
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// replay folds the journal's records into the job table and returns the
// jobs to re-queue, in submission order. Called before the workers start,
// so no locking is needed beyond the job constructors.
func (s *Scheduler) replay(recs []Record) []*Job {
	start := time.Now()
	var finOrder []string // terminal jobs in final-record (finish) order
	for _, rec := range recs {
		switch rec.Type {
		case RecSubmit:
			if rec.Req == nil || rec.ID == "" {
				continue
			}
			if _, dup := s.jobs[rec.ID]; dup {
				continue
			}
			est := int64(0)
			if s.cfg.EstimateBytes != nil {
				est = s.cfg.EstimateBytes(*rec.Req)
			}
			ctx, cancel := context.WithCancel(context.Background())
			j := &Job{
				id:        rec.ID,
				req:       *rec.Req,
				state:     Queued,
				submitted: rec.Time,
				estBytes:  est,
				recovered: true,
				ctx:       ctx,
				cancel:    cancel,
			}
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			if rec.Seq > s.seq {
				s.seq = rec.Seq
			}
		case RecStart:
			if j := s.jobs[rec.ID]; j != nil && !j.state.Final() {
				j.wasRunning = true
				if rec.Attempt > j.attempt {
					j.attempt = rec.Attempt
				}
			}
		case RecProgress:
			if j := s.jobs[rec.ID]; j != nil && !j.state.Final() {
				j.iterations = rec.Iter
			}
		case RecFinal:
			j := s.jobs[rec.ID]
			if j == nil || j.state.Final() {
				// Duplicate finals (a retried journal append that landed
				// twice) are idempotently ignored: the first final wins.
				continue
			}
			st, ok := stateByName(rec.State)
			if !ok || !st.Final() {
				continue
			}
			j.state = st
			j.finished = rec.Time
			if rec.Error != "" {
				j.err = errors.New(rec.Error)
			}
			j.cancel()
			finOrder = append(finOrder, j.id)
		}
	}

	now := time.Now()
	var requeue []*Job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state.Final() {
			s.recovery.Recovered++
			s.finished[j.state]++
			continue
		}
		if j.req.deadlinePassed(now) {
			s.expireLocked(j, now)
			s.recovery.Expired++
			continue
		}
		s.memUsed += j.estBytes
		s.recovery.Requeued++
		if j.wasRunning && s.cfg.CheckpointRoot != "" && checkpointDirExists(s.checkpointDir(j.id)) {
			s.recovery.Resumable++
		}
		requeue = append(requeue, j)
	}
	// The invariant the chaos suite asserts: every journaled submit is
	// accounted for. Computed before retention eviction mutates the tables.
	s.recovery.Lost = int64(len(s.order)) - (s.recovery.Recovered + s.recovery.Requeued + s.recovery.Expired)
	s.recovery.ReplaySeconds = time.Since(start).Seconds()
	s.gcOrphanCheckpoints(requeue)
	// Retention replays too: terminal jobs enter the eviction ring in
	// finish order (expiries detected above already did, via expireLocked),
	// and the same bound an uninterrupted server enforces is applied.
	for _, id := range finOrder {
		if j := s.jobs[id]; j != nil && j.state.Final() {
			s.noteTerminalLocked(j)
		}
	}
	s.evictTerminalLocked()
	return requeue
}

// expireLocked moves a non-running job to Expired and journals it. Caller
// guarantees no worker owns the job (replay, or the job was Queued under
// its own lock).
func (s *Scheduler) expireLocked(j *Job, now time.Time) {
	j.state = Expired
	j.err = ErrDeadlineExpired
	j.finished = now
	j.cancel()
	s.finished[Expired]++
	s.expired++
	s.journalFinal(j, Expired, ErrDeadlineExpired)
	s.gcCheckpointLocked(j.id)
	s.noteTerminalLocked(j)
}

// checkpointDir returns the job's private checkpoint directory.
func (s *Scheduler) checkpointDir(id string) string {
	return filepath.Join(s.cfg.CheckpointRoot, id)
}

func checkpointDirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

// gcOrphanCheckpoints removes checkpoint directories that belong to no
// re-queued job: terminal jobs' leftovers (beyond CheckpointKeep, newest
// first) and directories of jobs the journal has never heard of.
func (s *Scheduler) gcOrphanCheckpoints(requeue []*Job) {
	if s.cfg.CheckpointRoot == "" {
		return
	}
	entries, err := os.ReadDir(s.cfg.CheckpointRoot)
	if err != nil {
		return
	}
	live := make(map[string]bool, len(requeue))
	for _, j := range requeue {
		live[j.id] = true
	}
	var terminal []string
	for _, e := range entries {
		if !e.IsDir() || live[e.Name()] {
			continue
		}
		if j, ok := s.jobs[e.Name()]; ok && j.state.Final() {
			terminal = append(terminal, e.Name())
			continue
		}
		os.RemoveAll(filepath.Join(s.cfg.CheckpointRoot, e.Name()))
	}
	// Terminal leftovers: keep the newest CheckpointKeep by submission
	// order, prune the rest.
	sort.Slice(terminal, func(a, b int) bool { return jobSeq(terminal[a]) < jobSeq(terminal[b]) })
	keepFrom := len(terminal) - s.cfg.CheckpointKeep
	if keepFrom < 0 {
		keepFrom = 0
	}
	for _, id := range terminal[:keepFrom] {
		os.RemoveAll(filepath.Join(s.cfg.CheckpointRoot, id))
	}
	s.keptCk = append(s.keptCk, terminal[keepFrom:]...)
}

// jobSeq parses the sequence number out of a job ID (j<seq>-<hash>).
func jobSeq(id string) int64 {
	var seq int64
	fmt.Sscanf(id, "j%d-", &seq)
	return seq
}

// Submit admits req, returning the queued job or an admission error
// (ErrQueueFull, ErrTenantQueueFull, ErrUnknownTenant, ErrMemBudget,
// ErrClosed, ErrUnavailable). With a journal configured the submission is
// durable before Submit returns. Job IDs are deterministic in the
// submission sequence: j<seq>-<fnv32a of tenant|graph|algorithm|params>, so
// equal request streams produce equal IDs across server runs — and across
// restarts, because the replayed journal re-seeds the sequence.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	est := int64(0)
	if s.cfg.EstimateBytes != nil {
		est = s.cfg.EstimateBytes(req)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.cfg.Journal != nil && s.cfg.Journal.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, s.cfg.Journal.Err())
	}
	name := req.Tenant
	if name == "" {
		name = DefaultTenant
	}
	if s.strict && s.tenants[name] == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	t := s.tenantLocked(name)
	if t.cfg.MaxQueued > 0 && t.queued >= t.cfg.MaxQueued {
		return nil, fmt.Errorf("%w: tenant %q has %d queued (quota %d)",
			ErrTenantQueueFull, name, t.queued, t.cfg.MaxQueued)
	}
	if s.cfg.MemBudget > 0 && s.memUsed+est > s.cfg.MemBudget {
		return nil, fmt.Errorf("%w: %d bytes reserved, job needs %d, budget %d",
			ErrMemBudget, s.memUsed, est, s.cfg.MemBudget)
	}
	if s.queuedLen >= s.depth {
		return nil, fmt.Errorf("%w: depth %d", ErrQueueFull, s.depth)
	}
	seq := s.seq + 1
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:        jobID(seq, req),
		req:       req,
		state:     Queued,
		submitted: time.Now(),
		estBytes:  est,
		ctx:       ctx,
		cancel:    cancel,
	}
	// Durability precedes visibility: the submit record must be on disk
	// before a worker can run the job or the client learns its ID. The
	// fsync happens under s.mu, which also serialises journal order with
	// submission order.
	if s.cfg.Journal != nil {
		rec := Record{Type: RecSubmit, ID: j.id, Time: j.submitted, Seq: seq, Req: &req}
		if err := s.cfg.Journal.Append(rec); err != nil {
			cancel()
			return nil, err
		}
	}
	s.seq = seq
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.memUsed += est
	s.enqueueLocked(t, j)
	s.cond.Signal()
	return j, nil
}

// jobID derives the deterministic job identifier.
func jobID(seq int64, req Request) string {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d", req.Tenant, req.Graph, req.Algorithm, req.Source, req.MaxIterations)
	return fmt.Sprintf("j%05d-%08x", seq, h.Sum32())
}

// Get returns the job with the given ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all retained jobs in submission order. Terminal jobs beyond
// the retention bound have been evicted and are absent.
func (s *Scheduler) Jobs() []*Job {
	jobs, _ := s.JobsPage(0, -1)
	return jobs
}

// JobsPage returns retained jobs [offset, offset+limit) in submission
// order, plus the total retained count. A negative limit means "through the
// end"; an offset past the end returns an empty page.
func (s *Scheduler) JobsPage(offset, limit int) ([]*Job, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			live = append(live, j)
		}
	}
	total := len(live)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := total
	if limit >= 0 && offset+limit < end {
		end = offset + limit
	}
	return live[offset:end], total
}

// Evicted returns the total terminal jobs dropped by the retention policy.
func (s *Scheduler) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Retained returns the jobs currently held in memory.
func (s *Scheduler) Retained() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// noteTerminalLocked appends j to the terminal ring in finish order. Called
// with s.mu held, exactly once per job at its terminal edge (or at replay).
func (s *Scheduler) noteTerminalLocked(j *Job) {
	s.terminal = append(s.terminal, j.id)
}

// evictTerminalLocked enforces Config.RetainJobs: the oldest-finished jobs
// beyond the bound are dropped from the tables, result payloads and all.
// Their journal records stay — a replayed journal rebuilds and re-evicts
// them identically. Called with s.mu held.
func (s *Scheduler) evictTerminalLocked() {
	if s.cfg.RetainJobs <= 0 {
		return
	}
	for len(s.terminal) > s.cfg.RetainJobs {
		id := s.terminal[0]
		s.terminal[0] = ""
		s.terminal = s.terminal[1:]
		if _, ok := s.jobs[id]; ok {
			delete(s.jobs, id)
			s.evicted++
		}
	}
	// s.order keeps evicted IDs until it is mostly tombstones, then
	// compacts, so listing stays O(live) amortised without eager splicing.
	if len(s.order) > 2*len(s.jobs)+16 {
		live := s.order[:0]
		for _, id := range s.order {
			if _, ok := s.jobs[id]; ok {
				live = append(live, id)
			}
		}
		s.order = live
	}
}

// Cancel requests cancellation of the job: a queued job is marked cancelled
// and skipped by the workers; a running job's context aborts the engine at
// the next sub-block boundary. Cancelling a finished job is a no-op.
func (s *Scheduler) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	if j.state == Queued {
		j.state = Cancelled
		j.err = context.Canceled
		j.finished = time.Now()
		j.mu.Unlock()
		j.cancel()
		s.finishQueued(j, Cancelled, context.Canceled)
		return nil
	}
	j.mu.Unlock()
	j.cancel() // running: engine observes ctx; finished: no-op
	return nil
}

// finishQueued accounts a job that went terminal without ever running:
// journal, checkpoint GC, reservation release, counter, retention.
func (s *Scheduler) finishQueued(j *Job, final State, err error) {
	s.mu.Lock()
	s.journalFinal(j, final, err)
	s.gcCheckpointLocked(j.id)
	s.memUsed -= j.estBytes
	s.finished[final]++
	if final == Expired {
		s.expired++
	}
	s.noteTerminalLocked(j)
	s.evictTerminalLocked()
	s.mu.Unlock()
}

// journalFinal appends the job's terminal record. Called with s.mu held.
// Journal failure here is deliberately tolerated: the job still finishes in
// memory, and a restart will simply re-run it — duplicate execution, never
// a lost job.
func (s *Scheduler) journalFinal(j *Job, final State, err error) {
	if s.cfg.Journal == nil || s.killed {
		return
	}
	rec := Record{Type: RecFinal, ID: j.id, Time: time.Now(), State: final.String()}
	if err != nil {
		rec.Error = err.Error()
	}
	s.cfg.Journal.Append(rec)
}

// gcCheckpointLocked prunes the job's checkpoint directory once its
// terminal record is durable, retaining the last CheckpointKeep terminal
// jobs' directories for debugging. Called with s.mu held.
func (s *Scheduler) gcCheckpointLocked(id string) {
	if s.cfg.CheckpointRoot == "" || s.killed {
		return
	}
	if s.cfg.CheckpointKeep > 0 {
		s.keptCk = append(s.keptCk, id)
		if len(s.keptCk) <= s.cfg.CheckpointKeep {
			return
		}
		id, s.keptCk = s.keptCk[0], s.keptCk[1:]
	}
	os.RemoveAll(s.checkpointDir(id))
}

// Counts returns the number of jobs currently in each state.
func (s *Scheduler) Counts() map[State]int64 {
	out := make(map[State]int64, len(States))
	for _, j := range s.Jobs() {
		out[j.State()]++
	}
	return out
}

// QueueDepth returns (queued jobs, admission capacity).
func (s *Scheduler) QueueDepth() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedLen, s.depth
}

// MemReserved returns the summed memory estimates of queued and running
// jobs, and the configured budget (0 = unlimited).
func (s *Scheduler) MemReserved() (used, budget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memUsed, s.cfg.MemBudget
}

// release returns a finished job's memory reservation and tallies its
// terminal state (and fair-share Done count). Idempotence is guaranteed by
// callers: it runs exactly once per job, at the single Running→terminal
// edge.
func (s *Scheduler) release(j *Job, final State) {
	s.mu.Lock()
	s.memUsed -= j.estBytes
	s.finished[final]++
	if final == Expired {
		s.expired++
	}
	if final == Done {
		s.tenantLocked(j.req.Tenant).done++
	}
	s.noteTerminalLocked(j)
	s.evictTerminalLocked()
	s.mu.Unlock()
}

// FinishedCounts returns the monotonic terminal-state totals (done, failed,
// cancelled, expired) since the scheduler started, including terminal jobs
// recovered from the journal — counter semantics for /metrics.
func (s *Scheduler) FinishedCounts() map[State]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int64, len(s.finished))
	for k, v := range s.finished {
		out[k] = v
	}
	return out
}

// Retried returns the total job-level retry attempts after transient
// failures.
func (s *Scheduler) Retried() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retried
}

// ExpiredDeadline returns the total jobs expired past their deadline,
// including expiries detected at replay.
func (s *Scheduler) ExpiredDeadline() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}

// Recovery returns what the startup journal replay did; the zero value when
// no journal is configured.
func (s *Scheduler) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.mu.Lock()
		dead := s.killed
		s.mu.Unlock()
		if !dead { // killed: crash simulation — nothing runs, nothing is journaled
			s.runJob(j)
		}
		s.mu.Lock()
		s.tenantLocked(j.req.Tenant).running--
		s.cond.Signal() // a running slot freed: a quota-blocked tenant may now go
		s.mu.Unlock()
	}
}

// next blocks until a job is runnable under the fair-share policy and
// returns it, or returns nil when the scheduler is shut down and (for a
// graceful Close) the queues have drained. The returned job may have been
// cancelled while queued; runJob detects that and skips it.
func (s *Scheduler) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed && (s.killed || s.queuedLen == 0) {
			return nil
		}
		if j := s.nextLocked(); j != nil {
			return j
		}
		s.cond.Wait()
	}
}

func (s *Scheduler) runJob(j *Job) {
	now := time.Now()
	j.mu.Lock()
	if j.state != Queued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	if j.req.deadlinePassed(now) {
		j.state = Expired
		j.err = ErrDeadlineExpired
		j.finished = now
		j.mu.Unlock()
		j.cancel()
		s.mu.Lock()
		s.journalFinal(j, Expired, ErrDeadlineExpired)
		s.gcCheckpointLocked(j.id)
		s.mu.Unlock()
		s.release(j, Expired)
		return
	}
	j.state = Running
	j.started = now
	j.attempt++
	attempt := j.attempt
	j.mu.Unlock()

	ctx := j.ctx
	var cancels []context.CancelFunc
	timeout := time.Duration(j.req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var c context.CancelFunc
		ctx, c = context.WithTimeout(ctx, timeout)
		cancels = append(cancels, c)
	}
	if j.req.Deadline != nil {
		var c context.CancelFunc
		ctx, c = context.WithDeadline(ctx, *j.req.Deadline)
		cancels = append(cancels, c)
	}

	res, err := s.runAttempts(ctx, j, attempt)

	for _, c := range cancels {
		c()
	}
	j.cancel() // release the job context either way

	final := Done
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded) && j.req.deadlinePassed(time.Now()):
		final = Expired
		err = fmt.Errorf("%w: %v", ErrDeadlineExpired, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		final = Cancelled
	default:
		final = Failed
	}
	j.mu.Lock()
	j.state = final
	j.err = err
	j.res = res
	j.finished = time.Now()
	j.mu.Unlock()
	s.mu.Lock()
	s.journalFinal(j, final, err)
	s.gcCheckpointLocked(j.id)
	s.mu.Unlock()
	s.release(j, final)
}

// runAttempts executes the job, retrying transient storage failures up to
// cfg.Retries extra attempts under doubling backoff. Each attempt journals
// a start record; retried attempts resume from the job's checkpoint, so the
// iterations a failed attempt completed are never recomputed.
func (s *Scheduler) runAttempts(ctx context.Context, j *Job, attempt int) (*core.Result, error) {
	info := RunInfo{
		ID:              j.id,
		CheckpointEvery: s.cfg.CheckpointEvery,
		OnIteration: func(st core.IterStat) {
			j.mu.Lock()
			j.iterations = st.Index + 1
			j.activeVert = st.Active
			j.mu.Unlock()
			s.journalProgress(j.id, st.Index+1)
		},
	}
	if s.cfg.CheckpointRoot != "" {
		info.CheckpointDir = s.checkpointDir(j.id)
		info.Resume = true
	}
	backoff := s.cfg.RetryBackoff
	for {
		info.Attempt = attempt
		s.journalStart(j.id, attempt)
		res, err := s.cfg.Run(ctx, j.req, info)
		if err == nil || ctx.Err() != nil || !storage.IsTransient(err) {
			return res, err
		}
		s.mu.Lock()
		exhausted := attempt > s.cfg.Retries
		if !exhausted {
			s.retried++
		}
		s.mu.Unlock()
		if exhausted {
			return res, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 32*s.cfg.RetryBackoff {
			backoff *= 2
		}
		attempt++
		j.mu.Lock()
		j.attempt = attempt
		j.mu.Unlock()
	}
}

func (s *Scheduler) journalStart(id string, attempt int) {
	if s.cfg.Journal == nil {
		return
	}
	s.cfg.Journal.Append(Record{Type: RecStart, ID: id, Time: time.Now(), Attempt: attempt})
}

func (s *Scheduler) journalProgress(id string, iter int) {
	if s.cfg.Journal == nil {
		return
	}
	s.cfg.Journal.Append(Record{Type: RecProgress, ID: id, Time: time.Now(), Iter: iter})
}

// Close stops admission, deterministically cancels every still-queued job
// (journaling each before any worker can race the drain), cancels running
// jobs' contexts (a cancelled engine stops at the next sub-block, so
// shutdown is prompt), and waits for the workers. It returns ctx.Err() if
// the workers outlive ctx.
func (s *Scheduler) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil { // nil: evicted by retention
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()

	// First pass: flip every still-Queued job to Cancelled under its own
	// lock. A worker that dequeues one afterwards sees state != Queued and
	// skips it; a job the worker moved to Running first is cancelled via
	// its context like any running job. Either way the outcome is terminal
	// and journaled — the drain cannot silently drop a queued job.
	now := time.Now()
	for _, j := range jobs {
		j.mu.Lock()
		if j.state == Queued {
			j.state = Cancelled
			j.err = ErrClosed
			j.finished = now
			j.mu.Unlock()
			j.cancel()
			s.finishQueued(j, Cancelled, ErrClosed)
			continue
		}
		j.mu.Unlock()
		j.cancel() // running: prompt stop; terminal: no-op
	}
	// The cancelled jobs still sit in their tenants' FIFOs; woken workers
	// pop and skip them until the queues drain, then exit.
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill abandons the scheduler the way SIGKILL would: job contexts are
// cancelled so the engine aborts mid-run, but nothing further is journaled
// and no checkpoint is pruned — the on-disk state freezes exactly as a
// crash would leave it. Restart tests reopen the journal afterwards and
// assert full recovery. It waits for the workers within ctx's deadline.
func (s *Scheduler) Kill(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.killed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	for _, j := range jobs {
		j.cancel()
	}
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
