// Package jobs is the job scheduler behind `graphsd serve`: a bounded
// worker pool with admission control in front of the engine. Requests are
// admitted against two budgets — queue depth and an aggregate memory
// estimate across queued and running jobs — then executed by a fixed number
// of workers, each job carrying a context so cancellation (client request,
// per-job timeout, server shutdown) stops the engine between sub-blocks.
//
// The scheduler is deliberately engine-agnostic: it runs any Runner, so its
// lifecycle, admission, and shutdown logic is testable without layouts.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/graphsd/graphsd/internal/core"
)

// State is a job's lifecycle state. Transitions are strictly
// Queued → Running → one of (Done, Failed, Cancelled), except that a queued
// job may go directly to Cancelled.
type State int

const (
	Queued State = iota
	Running
	Done
	Failed
	Cancelled
)

// String returns the lowercase state name used in the API and metrics.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Final reports whether s is a terminal state.
func (s State) Final() bool { return s == Done || s == Failed || s == Cancelled }

// States lists every lifecycle state, for metrics enumeration.
var States = []State{Queued, Running, Done, Failed, Cancelled}

// Request describes one job submission.
type Request struct {
	// Graph names a graph registered with the server.
	Graph string `json:"graph"`
	// Algorithm is an algorithms.ByName name (pr, bfs, cc, sssp, ...).
	Algorithm string `json:"algorithm"`
	// Source is the source vertex for traversal algorithms.
	Source uint32 `json:"source,omitempty"`
	// MaxIterations overrides the algorithm's iteration bound when positive.
	MaxIterations int `json:"max_iterations,omitempty"`
	// TimeoutMS cancels the job this many milliseconds after it starts
	// running. Zero means no timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Runner executes one admitted job. onIter is invoked after each engine
// iteration for progress reporting; implementations must pass it through to
// core.Options.OnIteration (or call it themselves).
type Runner func(ctx context.Context, req Request, onIter func(core.IterStat)) (*core.Result, error)

// Config sizes a Scheduler.
type Config struct {
	// Workers is the number of jobs executed concurrently. Minimum 1.
	Workers int
	// QueueDepth bounds the jobs admitted but not yet running. Minimum 1.
	QueueDepth int
	// MemBudget, when positive, bounds the summed memory estimates of
	// queued and running jobs; submissions beyond it are rejected with
	// ErrMemBudget.
	MemBudget int64
	// EstimateBytes predicts a job's peak engine memory, consulted at
	// admission when MemBudget is set. Nil estimates zero.
	EstimateBytes func(Request) int64
	// Run executes one job. Required.
	Run Runner
}

// Admission errors. The server maps both to HTTP 429.
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrMemBudget = errors.New("jobs: memory budget exhausted")
	ErrClosed    = errors.New("jobs: scheduler shut down")
)

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("jobs: no such job")

// Job is one submitted request and its lifecycle. All fields are guarded by
// mu; read them through Status.
type Job struct {
	id  string
	req Request

	mu         sync.Mutex
	state      State
	err        error
	res        *core.Result
	iterations int
	activeVert int
	submitted  time.Time
	started    time.Time
	finished   time.Time
	estBytes   int64

	ctx    context.Context
	cancel context.CancelFunc
}

// ID returns the job's deterministic identifier.
func (j *Job) ID() string { return j.id }

// Request returns the submission that created the job.
func (j *Job) Request() Request { return j.req }

// Status is a point-in-time JSON-ready view of a job.
type Status struct {
	ID        string  `json:"id"`
	Graph     string  `json:"graph"`
	Algorithm string  `json:"algorithm"`
	State     string  `json:"state"`
	Error     string  `json:"error,omitempty"`
	// Iterations completed so far (live while running) and the active
	// vertex count entering the most recent iteration.
	Iterations int `json:"iterations"`
	ActiveVert int `json:"active_vertices,omitempty"`
	// Converged is meaningful once State is "done".
	Converged bool `json:"converged,omitempty"`
	// EstBytes is the admission-time memory estimate.
	EstBytes  int64  `json:"est_bytes,omitempty"`
	Submitted string `json:"submitted"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	// WaitMS/RunMS are queue latency and execution wall time.
	WaitMS int64 `json:"wait_ms"`
	RunMS  int64 `json:"run_ms,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.id,
		Graph:      j.req.Graph,
		Algorithm:  j.req.Algorithm,
		State:      j.state.String(),
		Iterations: j.iterations,
		ActiveVert: j.activeVert,
		EstBytes:   j.estBytes,
		Submitted:  j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.res != nil {
		st.Converged = j.res.Converged
		st.Iterations = j.res.Iterations
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
		st.WaitMS = j.started.Sub(j.submitted).Milliseconds()
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = end.Sub(j.started).Milliseconds()
	} else {
		st.WaitMS = time.Since(j.submitted).Milliseconds()
		if !j.finished.IsZero() { // cancelled while queued
			st.WaitMS = j.finished.Sub(j.submitted).Milliseconds()
			st.RunMS = 0
		}
	}
	return st
}

// Result returns the completed run's result, or nil while the job is not
// Done.
func (j *Job) Result() *core.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done {
		return nil
	}
	return j.res
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Scheduler is the bounded worker pool. Create with New, submit with
// Submit, stop with Close.
type Scheduler struct {
	cfg   Config
	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	seq      int64
	memUsed  int64
	closed   bool
	finished map[State]int64 // terminal-state counts, monotonic

	wg sync.WaitGroup
}

// New starts a scheduler with cfg.Workers workers.
func New(cfg Config) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.Run == nil {
		panic("jobs: Config.Run is required")
	}
	s := &Scheduler{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[string]*Job),
		finished: make(map[State]int64),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit admits req, returning the queued job or an admission error
// (ErrQueueFull, ErrMemBudget, ErrClosed). Job IDs are deterministic in the
// submission sequence: j<seq>-<fnv32a of graph|algorithm|params>, so equal
// request streams produce equal IDs across server runs.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	est := int64(0)
	if s.cfg.EstimateBytes != nil {
		est = s.cfg.EstimateBytes(req)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.cfg.MemBudget > 0 && s.memUsed+est > s.cfg.MemBudget {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d bytes reserved, job needs %d, budget %d",
			ErrMemBudget, s.memUsed, est, s.cfg.MemBudget)
	}
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:        jobID(s.seq, req),
		req:       req,
		state:     Queued,
		submitted: time.Now(),
		estBytes:  est,
		ctx:       ctx,
		cancel:    cancel,
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("%w: depth %d", ErrQueueFull, cap(s.queue))
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.memUsed += est
	s.mu.Unlock()
	return j, nil
}

// jobID derives the deterministic job identifier.
func jobID(seq int64, req Request) string {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s|%s|%d|%d", req.Graph, req.Algorithm, req.Source, req.MaxIterations)
	return fmt.Sprintf("j%05d-%08x", seq, h.Sum32())
}

// Get returns the job with the given ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel requests cancellation of the job: a queued job is marked cancelled
// and skipped by the workers; a running job's context aborts the engine at
// the next sub-block boundary. Cancelling a finished job is a no-op.
func (s *Scheduler) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	if j.state == Queued {
		j.state = Cancelled
		j.err = context.Canceled
		j.finished = time.Now()
		j.mu.Unlock()
		j.cancel()
		s.release(j, Cancelled)
		return nil
	}
	j.mu.Unlock()
	j.cancel() // running: engine observes ctx; finished: no-op
	return nil
}

// Counts returns the number of jobs currently in each state.
func (s *Scheduler) Counts() map[State]int64 {
	out := make(map[State]int64, len(States))
	for _, j := range s.Jobs() {
		out[j.State()]++
	}
	return out
}

// QueueDepth returns (queued jobs, capacity).
func (s *Scheduler) QueueDepth() (int, int) { return len(s.queue), cap(s.queue) }

// MemReserved returns the summed memory estimates of queued and running
// jobs, and the configured budget (0 = unlimited).
func (s *Scheduler) MemReserved() (used, budget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memUsed, s.cfg.MemBudget
}

// release returns a finished job's memory reservation and tallies its
// terminal state. Idempotence is guaranteed by callers: it runs exactly
// once per job, at the single Queued→Cancelled or Running→terminal edge.
func (s *Scheduler) release(j *Job, final State) {
	s.mu.Lock()
	s.memUsed -= j.estBytes
	s.finished[final]++
	s.mu.Unlock()
}

// FinishedCounts returns the monotonic terminal-state totals (done, failed,
// cancelled) since the scheduler started — counter semantics for /metrics.
func (s *Scheduler) FinishedCounts() map[State]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int64, len(s.finished))
	for k, v := range s.finished {
		out[k] = v
	}
	return out
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Scheduler) runJob(j *Job) {
	j.mu.Lock()
	if j.state != Queued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.mu.Unlock()

	ctx := j.ctx
	var cancelTimeout context.CancelFunc
	if j.req.TimeoutMS > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, time.Duration(j.req.TimeoutMS)*time.Millisecond)
	}
	res, err := s.cfg.Run(ctx, j.req, func(st core.IterStat) {
		j.mu.Lock()
		j.iterations = st.Index + 1
		j.activeVert = st.Active
		j.mu.Unlock()
	})
	if cancelTimeout != nil {
		cancelTimeout()
	}
	j.cancel() // release the job context either way

	final := Done
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		final = Cancelled
	default:
		final = Failed
	}
	j.mu.Lock()
	j.state = final
	j.err = err
	j.res = res
	j.finished = time.Now()
	j.mu.Unlock()
	s.release(j, final)
}

// Close stops admission, cancels every non-terminal job, and waits for the
// workers to drain — a cancelled engine stops at the next sub-block, so
// shutdown is prompt. It returns ctx.Err() if the workers outlive ctx.
func (s *Scheduler) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	close(s.queue)
	s.mu.Unlock()

	for _, j := range jobs {
		if !j.State().Final() {
			s.Cancel(j.ID())
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
