package jobs

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/core"
)

// gateRunner reports each job's tenant as it starts and holds the job until
// released (one token per job) or cancelled.
type gateRunner struct {
	started chan string
	release chan struct{}
}

func newGateRunner() *gateRunner {
	return &gateRunner{started: make(chan string, 64), release: make(chan struct{}, 64)}
}

func (g *gateRunner) run(ctx context.Context, req Request, info RunInfo) (*core.Result, error) {
	g.started <- req.Tenant
	select {
	case <-g.release:
		return &core.Result{Algorithm: req.Algorithm, Iterations: 1, Converged: true}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestFairShareWeightedOrder drives a single worker through backlogged
// queues of a weight-2 and a weight-1 tenant and asserts the stride
// scheduler's exact dequeue order — deterministic because ties break by
// name.
func TestFairShareWeightedOrder(t *testing.T) {
	r := newGateRunner()
	s := New(Config{
		Workers: 1, QueueDepth: 16,
		Tenants: []Tenant{{Name: "a", Weight: 2}, {Name: "b", Weight: 1}, {Name: "warm", Weight: 1}},
		Run:     r.run,
	})
	defer s.Close(context.Background())

	// Occupy the worker so the a/b backlogs build before any dequeue.
	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "warm"}); err != nil {
		t.Fatal(err)
	}
	if got := <-r.started; got != "warm" {
		t.Fatalf("first start %q, want warm", got)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "a", Source: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "b", Source: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r.release <- struct{}{} // let warm finish

	var order []string
	for i := 0; i < 9; i++ {
		got := <-r.started
		order = append(order, got)
		r.release <- struct{}{}
	}
	want := []string{"a", "b", "a", "a", "b", "a", "a", "b", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", order, want)
		}
	}
}

// TestFairShareFloodDoesNotStarve: a tenant with a deep backlog cannot push
// a trickling tenant's jobs behind its own — the quiet tenant's next job is
// dequeued no later than second.
func TestFairShareFloodDoesNotStarve(t *testing.T) {
	r := newGateRunner()
	s := New(Config{
		Workers: 1, QueueDepth: 64,
		Tenants: []Tenant{{Name: "flood"}, {Name: "quiet"}},
		Run:     r.run,
	})
	defer s.Close(context.Background())

	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "flood"}); err != nil {
		t.Fatal(err)
	}
	<-r.started // flood job running; now build the flood backlog
	for i := 0; i < 20; i++ {
		if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "flood", Source: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "quiet"}); err != nil {
		t.Fatal(err)
	}
	r.release <- struct{}{}

	// Equal weights, flood.pass is ahead after its first dequeue: quiet
	// must go next, 20-deep backlog notwithstanding.
	if got := <-r.started; got != "quiet" {
		t.Fatalf("after flood backlog, next dequeue was %q, want quiet", got)
	}
	r.release <- struct{}{}
	for i := 0; i < 20; i++ {
		<-r.started
		r.release <- struct{}{}
	}
}

func TestTenantQueueQuota(t *testing.T) {
	r := newGateRunner()
	s := New(Config{
		Workers: 1, QueueDepth: 16,
		Tenants: []Tenant{{Name: "a", MaxQueued: 2}, {Name: "b"}},
		Run:     r.run,
	})
	defer s.Close(context.Background())

	// Occupy the worker with b so a's submissions stay queued.
	s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "b"})
	<-r.started
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "a", Source: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "a", Source: 9}); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("err = %v, want ErrTenantQueueFull", err)
	}
	// The quota is per-tenant: b still admits.
	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "b", Source: 9}); err != nil {
		t.Fatalf("b rejected: %v", err)
	}
	close(r.release)
}

func TestTenantRunningQuota(t *testing.T) {
	r := newGateRunner()
	s := New(Config{
		Workers: 2, QueueDepth: 16,
		Tenants: []Tenant{{Name: "a", MaxRunning: 1}, {Name: "b"}},
		Run:     r.run,
	})
	defer s.Close(context.Background())

	s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "a", Source: 0})
	if got := <-r.started; got != "a" {
		t.Fatalf("first start %q", got)
	}
	s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "a", Source: 1})
	s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "b", Source: 0})
	// The free worker must take b's job: a is at its running cap.
	if got := <-r.started; got != "b" {
		t.Fatalf("second start %q, want b (a at MaxRunning)", got)
	}
	select {
	case got := <-r.started:
		t.Fatalf("third job started (%q) while a is at its running cap", got)
	case <-time.After(50 * time.Millisecond):
	}
	close(r.release) // everything drains; a's second job now runs
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c := s.FinishedCounts(); c[Done] == 3 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("jobs did not drain: %v", s.FinishedCounts())
}

func TestUnknownTenantRejected(t *testing.T) {
	r := newGateRunner()
	close(r.release)
	s := New(Config{Workers: 1, QueueDepth: 4, Tenants: []Tenant{{Name: "a"}}, Run: r.run})
	defer s.Close(context.Background())

	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "nobody"}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
	// The empty tenant resolves to DefaultTenant, which is unknown too when
	// an explicit tenant set is configured.
	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr"}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("default-tenant err = %v, want ErrUnknownTenant", err)
	}
	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "a"}); err != nil {
		t.Fatal(err)
	}
}

func TestTenantSnapshots(t *testing.T) {
	r := newGateRunner()
	s := New(Config{Workers: 1, QueueDepth: 8,
		Tenants: []Tenant{{Name: "a", Weight: 3}, {Name: "b"}}, Run: r.run})
	defer s.Close(context.Background())

	s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "a"})
	<-r.started
	s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "a", Source: 1})
	s.Submit(Request{Graph: "g", Algorithm: "pr", Tenant: "b"})

	snaps := s.Tenants()
	if len(snaps) != 2 || snaps[0].Name != "a" || snaps[1].Name != "b" {
		t.Fatalf("snapshots: %+v", snaps)
	}
	if snaps[0].Weight != 3 || snaps[0].Running != 1 || snaps[0].Queued != 1 || snaps[0].Submitted != 2 {
		t.Fatalf("tenant a: %+v", snaps[0])
	}
	if snaps[1].Queued != 1 || snaps[1].Submitted != 1 {
		t.Fatalf("tenant b: %+v", snaps[1])
	}
	close(r.release)
}

// drainDone waits until n jobs are Done.
func drainDone(t *testing.T, s *Scheduler, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c := s.FinishedCounts(); c[Done] >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("only %v done, want %d", s.FinishedCounts(), n)
}

// TestRetentionEvictsTerminalJobs: the leak regression — a bounded scheduler
// drops the oldest finished jobs (payloads included) while counters stay
// monotonic.
func TestRetentionEvictsTerminalJobs(t *testing.T) {
	run := func(ctx context.Context, req Request, info RunInfo) (*core.Result, error) {
		return &core.Result{Iterations: 1, Converged: true, Outputs: make([]float64, 1024)}, nil
	}
	s := New(Config{Workers: 1, QueueDepth: 8, RetainJobs: 2, Run: run})
	defer s.Close(context.Background())

	var ids []string
	for i := 0; i < 5; i++ {
		j, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Source: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
		drainDone(t, s, int64(i+1)) // sequential: finish order == submission order
	}

	if got := s.Retained(); got != 2 {
		t.Fatalf("retained %d jobs, want 2", got)
	}
	if got := s.Evicted(); got != 3 {
		t.Fatalf("evicted %d, want 3", got)
	}
	for _, id := range ids[:3] {
		if _, ok := s.Get(id); ok {
			t.Fatalf("evicted job %s still retrievable", id)
		}
	}
	for _, id := range ids[3:] {
		j, ok := s.Get(id)
		if !ok {
			t.Fatalf("retained job %s missing", id)
		}
		if j.Result() == nil {
			t.Fatalf("retained job %s lost its result", id)
		}
	}
	// The monotonic counters survive eviction; the listing shrinks.
	if c := s.FinishedCounts(); c[Done] != 5 {
		t.Fatalf("finished counts: %v", c)
	}
	if jobs, total := s.JobsPage(0, -1); total != 2 || len(jobs) != 2 || jobs[0].ID() != ids[3] || jobs[1].ID() != ids[4] {
		t.Fatalf("listing after eviction: total=%d %v", total, jobs)
	}
}

func TestJobsPage(t *testing.T) {
	run := func(ctx context.Context, req Request, info RunInfo) (*core.Result, error) {
		return &core.Result{Iterations: 1, Converged: true}, nil
	}
	s := New(Config{Workers: 1, QueueDepth: 16, Run: run})
	defer s.Close(context.Background())
	var ids []string
	for i := 0; i < 7; i++ {
		j, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Source: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	page, total := s.JobsPage(2, 3)
	if total != 7 || len(page) != 3 || page[0].ID() != ids[2] || page[2].ID() != ids[4] {
		t.Fatalf("page(2,3): total=%d len=%d", total, len(page))
	}
	if page, total := s.JobsPage(100, 3); total != 7 || len(page) != 0 {
		t.Fatalf("page past end: total=%d len=%d", total, len(page))
	}
	if page, _ := s.JobsPage(5, -1); len(page) != 2 {
		t.Fatalf("open-ended page: len=%d", len(page))
	}
	if page, _ := s.JobsPage(3, 0); len(page) != 0 {
		t.Fatalf("limit-0 page: len=%d", len(page))
	}
}

// TestRetentionJournalConsistent: a restarted scheduler replays the journal
// and converges on the same retained set as the uninterrupted run — evicted
// jobs stay evicted, counters account for every journaled submit.
func TestRetentionJournalConsistent(t *testing.T) {
	dir := t.TempDir()
	run := func(ctx context.Context, req Request, info RunInfo) (*core.Result, error) {
		return &core.Result{Iterations: 1, Converged: true}, nil
	}
	open := func() (*Scheduler, *Journal) {
		jr, err := OpenJournal(filepath.Join(dir, "wal"), 0)
		if err != nil {
			t.Fatal(err)
		}
		return New(Config{Workers: 1, QueueDepth: 8, RetainJobs: 2, Run: run, Journal: jr}), jr
	}

	s, jr := open()
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Source: uint32(i)}); err != nil {
			t.Fatal(err)
		}
		drainDone(t, s, int64(i+1))
	}
	var retained []string
	for _, j := range s.Jobs() {
		retained = append(retained, j.ID())
	}
	if len(retained) != 2 {
		t.Fatalf("retained %v", retained)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	s2, jr2 := open()
	defer func() { s2.Close(context.Background()); jr2.Close() }()
	rec := s2.Recovery()
	if rec.Lost != 0 || rec.Recovered != 5 || rec.Requeued != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
	var after []string
	for _, j := range s2.Jobs() {
		after = append(after, j.ID())
	}
	if len(after) != 2 || after[0] != retained[0] || after[1] != retained[1] {
		t.Fatalf("retained set diverged across restart: %v vs %v", after, retained)
	}
	if got := s2.Evicted(); got != 3 {
		t.Fatalf("replay evicted %d, want 3", got)
	}
}
