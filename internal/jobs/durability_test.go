package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/storage"
)

// checkpointingRunner simulates an engine that persists a checkpoint: each
// run drops a marker file in the job's checkpoint directory before blocking
// on release/ctx, and records the RunInfo it was handed.
type checkpointingRunner struct {
	mu      sync.Mutex
	infos   []RunInfo
	started chan string
	release chan struct{}
	instant string // algorithm that completes without blocking on release
	err     error  // returned on release when set
}

func newCheckpointingRunner() *checkpointingRunner {
	return &checkpointingRunner{started: make(chan string, 64), release: make(chan struct{})}
}

func (c *checkpointingRunner) run(ctx context.Context, req Request, info RunInfo) (*core.Result, error) {
	c.mu.Lock()
	c.infos = append(c.infos, info)
	c.mu.Unlock()
	if info.CheckpointDir != "" {
		os.MkdirAll(info.CheckpointDir, 0o755)
		os.WriteFile(filepath.Join(info.CheckpointDir, "state"), []byte(info.ID), 0o644)
	}
	c.started <- info.ID
	if req.Algorithm == c.instant {
		return &core.Result{Algorithm: req.Algorithm, Iterations: 3, Converged: true}, nil
	}
	select {
	case <-c.release:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return &core.Result{Algorithm: req.Algorithm, Iterations: 3, Converged: true}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *checkpointingRunner) runs() []RunInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RunInfo(nil), c.infos...)
}

// openJournal is a test helper that fails instead of returning an error.
func openJournal(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestRecoveryAfterKill is the core durability scenario: a scheduler with
// one finished, one running, and one queued job is killed mid-run; a second
// scheduler over the same journal must keep the finished job finished and
// re-run the other two, with zero jobs lost.
func TestRecoveryAfterKill(t *testing.T) {
	dir := t.TempDir()
	ckRoot := filepath.Join(dir, "ck")

	jr := openJournal(t, filepath.Join(dir, "wal"))
	r1 := newCheckpointingRunner()
	r1.instant = "pr" // the first job completes; later algorithms block
	s1 := New(Config{Workers: 1, QueueDepth: 8, Run: r1.run, Journal: jr, CheckpointRoot: ckRoot})

	done, err := s1.Submit(Request{Graph: "g", Algorithm: "pr"})
	if err != nil {
		t.Fatal(err)
	}
	<-r1.started
	waitState(t, done, Done)

	running, _ := s1.Submit(Request{Graph: "g", Algorithm: "cc"})
	<-r1.started
	queued, _ := s1.Submit(Request{Graph: "g", Algorithm: "bfs"})

	killCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Kill(killCtx); err != nil {
		t.Fatal(err)
	}
	jr.Close()
	// The kill must freeze state: no final record for the running/queued
	// jobs, and the running job's checkpoint dir is intact.
	if !checkpointDirExists(filepath.Join(ckRoot, running.ID())) {
		t.Fatal("kill pruned the running job's checkpoint")
	}

	jr2 := openJournal(t, filepath.Join(dir, "wal"))
	r3 := newCheckpointingRunner()
	close(r3.release)
	s2 := New(Config{Workers: 1, QueueDepth: 8, Run: r3.run, Journal: jr2, CheckpointRoot: ckRoot})
	defer func() { s2.Close(context.Background()); jr2.Close() }()

	rec := s2.Recovery()
	if rec.Recovered != 1 || rec.Requeued != 2 || rec.Lost != 0 {
		t.Fatalf("recovery = %+v, want recovered=1 requeued=2 lost=0", rec)
	}
	if rec.Resumable != 1 {
		t.Fatalf("resumable = %d, want 1 (the mid-run job had a checkpoint)", rec.Resumable)
	}

	// The finished job is still finished — and flagged recovered.
	jd, ok := s2.Get(done.ID())
	if !ok || jd.State() != Done || !jd.Recovered() {
		t.Fatalf("done job after restart: ok=%v state=%v", ok, jd.State())
	}
	if jd.Result() != nil {
		t.Fatal("recovered done job resurrected a result payload")
	}

	// Both unfinished jobs re-run to completion, in submission order.
	for _, id := range []string{running.ID(), queued.ID()} {
		j2, ok := s2.Get(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		waitState(t, j2, Done)
		if !j2.Recovered() {
			t.Fatalf("job %s not marked recovered", id)
		}
	}
	runs := r3.runs()
	if len(runs) != 2 || runs[0].ID != running.ID() || runs[1].ID != queued.ID() {
		t.Fatalf("re-run order %v, want [%s %s]", runs, running.ID(), queued.ID())
	}
	// Recovered jobs run with Resume set so the engine restores any
	// checkpoint it finds.
	for _, ri := range runs {
		if !ri.Resume || ri.CheckpointDir == "" {
			t.Fatalf("recovered job ran without resume wiring: %+v", ri)
		}
	}
	// Job IDs stay deterministic across the restart: a new submission
	// continues the replayed sequence.
	j4, err := s2.Submit(Request{Graph: "g", Algorithm: "pr"})
	if err != nil {
		t.Fatal(err)
	}
	if jobSeq(j4.ID()) != 4 {
		t.Fatalf("post-restart sequence = %d (%s), want 4", jobSeq(j4.ID()), j4.ID())
	}
}

// TestRecoveryTornFinal: the crash eats the final record (torn append), so
// the restarted scheduler re-runs the job — duplicate execution, never a
// lost job.
func TestRecoveryTornFinal(t *testing.T) {
	dir := t.TempDir()
	jr := openJournal(t, filepath.Join(dir, "wal"))
	r := newCheckpointingRunner()
	s1 := New(Config{Workers: 1, QueueDepth: 4, Run: r.run, Journal: jr})

	j, err := s1.Submit(Request{Graph: "g", Algorithm: "pr"})
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	// Tear the very next append — the job's final record — while the
	// runner is still blocked, then let it finish.
	jr.SetFaultInjector(func(op, name string) error {
		return fmt.Errorf("chaos: %w", storage.ErrTornWrite)
	})
	close(r.release)
	waitState(t, j, Done) // journal failure is tolerated; job finishes in memory
	s1.Close(context.Background())
	jr.Close()

	jr2 := openJournal(t, filepath.Join(dir, "wal"))
	r2 := newCheckpointingRunner()
	close(r2.release)
	s2 := New(Config{Workers: 1, QueueDepth: 4, Run: r2.run, Journal: jr2})
	defer func() { s2.Close(context.Background()); jr2.Close() }()

	rec := s2.Recovery()
	if rec.Requeued != 1 || rec.Recovered != 0 || rec.Lost != 0 {
		t.Fatalf("recovery = %+v, want the torn-final job requeued", rec)
	}
	j2, _ := s2.Get(j.ID())
	waitState(t, j2, Done)
}

// TestRecoveryDuplicateFinal: a journal holding two final records for one
// job (a retried append that landed twice) replays first-final-wins.
func TestRecoveryDuplicateFinal(t *testing.T) {
	dir := t.TempDir()
	jr := openJournal(t, filepath.Join(dir, "wal"))
	req := Request{Graph: "g", Algorithm: "pr"}
	appendAll(t, jr,
		Record{Type: RecSubmit, ID: "j00001-x", Time: time.Now(), Seq: 1, Req: &req},
		Record{Type: RecFinal, ID: "j00001-x", State: "done"},
		Record{Type: RecFinal, ID: "j00001-x", State: "failed", Error: "late duplicate"},
	)
	jr.Close()

	jr2 := openJournal(t, filepath.Join(dir, "wal"))
	r := newCheckpointingRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run, Journal: jr2})
	defer func() { s.Close(context.Background()); jr2.Close() }()

	j, ok := s.Get("j00001-x")
	if !ok || j.State() != Done {
		t.Fatalf("duplicate final replay: ok=%v state=%v, want done (first final wins)", ok, j.State())
	}
	if j.Err() != nil {
		t.Fatalf("late duplicate's error leaked in: %v", j.Err())
	}
	rec := s.Recovery()
	if rec.Recovered != 1 || rec.Requeued != 0 || rec.Lost != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
}

// TestDeadlineExpiry covers all three expiry sites: a running job's context
// is cancelled at the deadline, a queued job past its deadline is expired
// instead of run, and a journaled job whose deadline passed while the
// server was down is expired at replay.
func TestDeadlineExpiry(t *testing.T) {
	t.Run("running", func(t *testing.T) {
		r := newCheckpointingRunner()
		s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run})
		defer s.Close(context.Background())
		dl := time.Now().Add(30 * time.Millisecond)
		j, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Deadline: &dl})
		if err != nil {
			t.Fatal(err)
		}
		<-r.started
		waitState(t, j, Expired)
		if !errors.Is(j.Err(), ErrDeadlineExpired) {
			t.Fatalf("err = %v, want ErrDeadlineExpired", j.Err())
		}
		if s.ExpiredDeadline() != 1 {
			t.Fatalf("expired counter = %d", s.ExpiredDeadline())
		}
	})

	t.Run("queued", func(t *testing.T) {
		r := newCheckpointingRunner()
		s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run})
		defer func() { close(r.release); s.Close(context.Background()) }()
		// Occupy the only worker, then queue a job whose deadline passes
		// while it waits.
		blocker, _ := s.Submit(Request{Graph: "g", Algorithm: "pr"})
		<-r.started
		dl := time.Now().Add(20 * time.Millisecond)
		j, _ := s.Submit(Request{Graph: "g", Algorithm: "cc", Deadline: &dl})
		time.Sleep(40 * time.Millisecond)
		r.release <- struct{}{} // let the blocker finish; worker dequeues j
		waitState(t, j, Expired)
		waitState(t, blocker, Done)
		// The expired job never reached the runner.
		for _, ri := range r.runs() {
			if ri.ID == j.ID() {
				t.Fatal("expired queued job was run")
			}
		}
	})

	t.Run("replay", func(t *testing.T) {
		dir := t.TempDir()
		jr := openJournal(t, filepath.Join(dir, "wal"))
		dl := time.Now().Add(30 * time.Millisecond)
		req := Request{Graph: "g", Algorithm: "pr", Deadline: &dl}
		appendAll(t, jr, Record{Type: RecSubmit, ID: "j00001-x", Time: time.Now(), Seq: 1, Req: &req})
		jr.Close()
		time.Sleep(50 * time.Millisecond) // the "server down" window outlives the deadline

		jr2 := openJournal(t, filepath.Join(dir, "wal"))
		r := newCheckpointingRunner()
		s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run, Journal: jr2})
		defer func() { s.Close(context.Background()); jr2.Close() }()
		j, ok := s.Get("j00001-x")
		if !ok || j.State() != Expired {
			t.Fatalf("replayed past-deadline job: ok=%v state=%v, want expired", ok, j.State())
		}
		rec := s.Recovery()
		if rec.Expired != 1 || rec.Requeued != 0 || rec.Lost != 0 {
			t.Fatalf("recovery = %+v", rec)
		}
		// The expiry was journaled, so a third replay recovers it as
		// terminal without re-expiring.
		s.Close(context.Background())
		jr2.Close()
		jr3 := openJournal(t, filepath.Join(dir, "wal"))
		s3 := New(Config{Workers: 1, QueueDepth: 4, Run: r.run, Journal: jr3})
		defer func() { s3.Close(context.Background()); jr3.Close() }()
		if rec := s3.Recovery(); rec.Recovered != 1 || rec.Expired != 0 {
			t.Fatalf("second restart recovery = %+v, want the expiry already terminal", rec)
		}
	})
}

// TestTransientRetry: transient storage errors re-run the job (with resume
// wiring) up to Retries extra attempts; permanent errors never retry.
func TestTransientRetry(t *testing.T) {
	var mu sync.Mutex
	var attempts []int
	failures := 2
	run := func(ctx context.Context, req Request, info RunInfo) (*core.Result, error) {
		mu.Lock()
		attempts = append(attempts, info.Attempt)
		n := len(attempts)
		mu.Unlock()
		if n <= failures {
			return nil, storage.Transient(errors.New("flaky read"))
		}
		return &core.Result{Iterations: 1, Converged: true}, nil
	}
	s := New(Config{Workers: 1, QueueDepth: 4, Run: run, Retries: 3, RetryBackoff: time.Millisecond})
	defer s.Close(context.Background())

	j, err := s.Submit(Request{Graph: "g", Algorithm: "pr"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Done)
	mu.Lock()
	got := append([]int(nil), attempts...)
	mu.Unlock()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("attempts = %v, want [1 2 3]", got)
	}
	if s.Retried() != 2 {
		t.Fatalf("Retried() = %d, want 2", s.Retried())
	}
	if st := j.Status(); st.Attempt != 3 {
		t.Fatalf("status attempt = %d, want 3", st.Attempt)
	}

	// Exhausted retries surface the transient error as Failed.
	s2 := New(Config{Workers: 1, QueueDepth: 4, Retries: 1, RetryBackoff: time.Millisecond,
		Run: func(ctx context.Context, req Request, info RunInfo) (*core.Result, error) {
			return nil, storage.Transient(errors.New("always flaky"))
		}})
	defer s2.Close(context.Background())
	j2, _ := s2.Submit(Request{Graph: "g", Algorithm: "pr"})
	waitState(t, j2, Failed)
	if s2.Retried() != 1 {
		t.Fatalf("exhausted Retried() = %d, want 1", s2.Retried())
	}

	// Permanent failures don't retry.
	calls := 0
	s3 := New(Config{Workers: 1, QueueDepth: 4, Retries: 3, RetryBackoff: time.Millisecond,
		Run: func(ctx context.Context, req Request, info RunInfo) (*core.Result, error) {
			calls++
			return nil, errors.New("permanent")
		}})
	defer s3.Close(context.Background())
	j3, _ := s3.Submit(Request{Graph: "g", Algorithm: "pr"})
	waitState(t, j3, Failed)
	if calls != 1 || s3.Retried() != 0 {
		t.Fatalf("permanent failure ran %d times, retried %d", calls, s3.Retried())
	}
}

// TestDrainDeterministic: Close with a journal cancels every queued job
// deterministically and journals the cancellations — a restart recovers
// them as terminal, requeuing nothing, and submissions during the drain are
// shed with ErrClosed.
func TestDrainDeterministic(t *testing.T) {
	dir := t.TempDir()
	jr := openJournal(t, filepath.Join(dir, "wal"))
	r := newCheckpointingRunner()
	s := New(Config{Workers: 1, QueueDepth: 8, Run: r.run, Journal: jr})

	running, _ := s.Submit(Request{Graph: "g", Algorithm: "pr"})
	<-r.started
	var queued []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(Request{Graph: "g", Algorithm: "cc", Source: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	closed := make(chan struct{})
	go func() {
		defer close(closed)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	}()
	<-closed
	waitState(t, running, Cancelled) // ctx-cancelled mid-run
	for _, j := range queued {
		if st := j.State(); st != Cancelled {
			t.Fatalf("queued job %s drained to %s, want cancelled", j.ID(), st)
		}
		if !errors.Is(j.Err(), ErrClosed) {
			t.Fatalf("queued job err = %v", j.Err())
		}
	}
	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit during drain: %v", err)
	}
	if used, _ := s.MemReserved(); used != 0 {
		t.Fatalf("memory still reserved after drain: %d", used)
	}
	jr.Close()

	// Restart: everything is terminal, nothing requeues.
	jr2 := openJournal(t, filepath.Join(dir, "wal"))
	s2 := New(Config{Workers: 1, QueueDepth: 8, Run: r.run, Journal: jr2})
	defer func() { s2.Close(context.Background()); jr2.Close() }()
	rec := s2.Recovery()
	if rec.Recovered != 5 || rec.Requeued != 0 || rec.Lost != 0 {
		t.Fatalf("post-drain recovery = %+v, want 5 recovered", rec)
	}
}

// TestSubmitJournalUnavailable: once the journal fails, submissions are shed
// with ErrUnavailable instead of accepted without durability.
func TestSubmitJournalUnavailable(t *testing.T) {
	dir := t.TempDir()
	jr := openJournal(t, filepath.Join(dir, "wal"))
	r := newCheckpointingRunner()
	close(r.release)
	s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run, Journal: jr})
	defer func() { s.Close(context.Background()); jr.Close() }()

	boom := errors.New("disk gone")
	jr.SetFaultInjector(func(op, name string) error { return boom })
	// The failing submit reports the journal error...
	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr"}); !errors.Is(err, ErrJournalUnavailable) {
		t.Fatalf("submit with failing journal: %v", err)
	}
	// ...and every submit after it is shed before touching the journal.
	if _, err := s.Submit(Request{Graph: "g", Algorithm: "pr"}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("submit after journal failure: %v", err)
	}
}

// TestCheckpointGC: a terminal job's checkpoint directory is pruned once its
// final record is journaled; CheckpointKeep retains the last N.
func TestCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	ckRoot := filepath.Join(dir, "ck")
	r := newCheckpointingRunner()
	close(r.release)
	s := New(Config{Workers: 1, QueueDepth: 8, Run: r.run, CheckpointRoot: ckRoot, CheckpointKeep: 2})
	defer s.Close(context.Background())

	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Source: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, Done)
		ids = append(ids, j.ID())
	}
	for i, id := range ids {
		exists := checkpointDirExists(filepath.Join(ckRoot, id))
		want := i >= 2 // only the newest CheckpointKeep=2 survive
		if exists != want {
			t.Fatalf("checkpoint dir %d (%s): exists=%v, want %v", i, id, exists, want)
		}
	}
}

// TestOrphanCheckpointPruning: replay removes checkpoint directories that
// belong to no journaled job and terminal leftovers beyond CheckpointKeep,
// while a requeued job's directory survives.
func TestOrphanCheckpointPruning(t *testing.T) {
	dir := t.TempDir()
	ckRoot := filepath.Join(dir, "ck")
	jr := openJournal(t, filepath.Join(dir, "wal"))
	req := Request{Graph: "g", Algorithm: "pr"}
	appendAll(t, jr,
		Record{Type: RecSubmit, ID: "j00001-done", Time: time.Now(), Seq: 1, Req: &req},
		Record{Type: RecFinal, ID: "j00001-done", State: "done"},
		Record{Type: RecSubmit, ID: "j00002-live", Time: time.Now(), Seq: 2, Req: &req},
		Record{Type: RecStart, ID: "j00002-live", Attempt: 1},
	)
	jr.Close()
	for _, id := range []string{"j00001-done", "j00002-live", "j99999-orphan"} {
		if err := os.MkdirAll(filepath.Join(ckRoot, id), 0o755); err != nil {
			t.Fatal(err)
		}
	}

	jr2 := openJournal(t, filepath.Join(dir, "wal"))
	r := newCheckpointingRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run, Journal: jr2, CheckpointRoot: ckRoot})
	defer func() { close(r.release); s.Close(context.Background()); jr2.Close() }()

	if checkpointDirExists(filepath.Join(ckRoot, "j99999-orphan")) {
		t.Fatal("orphan checkpoint dir survived replay")
	}
	if checkpointDirExists(filepath.Join(ckRoot, "j00001-done")) {
		t.Fatal("terminal job's checkpoint survived with CheckpointKeep=0")
	}
	if !checkpointDirExists(filepath.Join(ckRoot, "j00002-live")) {
		t.Fatal("requeued job's checkpoint was pruned")
	}
	if rec := s.Recovery(); rec.Resumable != 1 {
		t.Fatalf("resumable = %d, want 1", rec.Resumable)
	}
}

// TestRecoveryKeepTerminalCheckpoints: with CheckpointKeep set, replay
// retains the newest N terminal checkpoint directories.
func TestRecoveryKeepTerminalCheckpoints(t *testing.T) {
	dir := t.TempDir()
	ckRoot := filepath.Join(dir, "ck")
	jr := openJournal(t, filepath.Join(dir, "wal"))
	req := Request{Graph: "g", Algorithm: "pr"}
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("j%05d-t", i)
		appendAll(t, jr,
			Record{Type: RecSubmit, ID: id, Time: time.Now(), Seq: int64(i), Req: &req},
			Record{Type: RecFinal, ID: id, State: "done"},
		)
		if err := os.MkdirAll(filepath.Join(ckRoot, id), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	jr.Close()

	jr2 := openJournal(t, filepath.Join(dir, "wal"))
	r := newCheckpointingRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, Run: r.run, Journal: jr2, CheckpointRoot: ckRoot, CheckpointKeep: 1})
	defer func() { close(r.release); s.Close(context.Background()); jr2.Close() }()

	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("j%05d-t", i)
		exists := checkpointDirExists(filepath.Join(ckRoot, id))
		if want := i == 3; exists != want { // newest survives
			t.Fatalf("terminal checkpoint %s: exists=%v, want %v", id, exists, want)
		}
	}
}

// TestRecoveryLostInvariantUnderChaos runs submit/kill/recover cycles with a
// crash point sweeping across every journal append and asserts the
// accounting invariant: no journaled submission is ever lost.
func TestRecoveryLostInvariantUnderChaos(t *testing.T) {
	for crashAt := int64(1); crashAt <= 8; crashAt++ {
		dir := t.TempDir()
		wal := filepath.Join(dir, "wal")
		jr := openJournal(t, wal)
		chaos := storage.NewChaos(storage.ChaosOptions{
			Seed:          crashAt,
			CrashAfterOps: crashAt,
			Match:         func(op, name string) bool { return op == "append" },
		})
		jr.SetFaultInjector(chaos.Injector())
		r := newCheckpointingRunner()
		close(r.release)
		s := New(Config{Workers: 1, QueueDepth: 16, Run: r.run, Journal: jr})

		accepted := 0
		for i := 0; i < 6; i++ {
			j, err := s.Submit(Request{Graph: "g", Algorithm: "pr", Source: uint32(i)})
			if err != nil {
				continue // journal down: load shed, the client knows
			}
			accepted++
			waitState(t, j, Done)
		}
		killCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		s.Kill(killCtx)
		cancel()
		jr.Close()

		jr2 := openJournal(t, wal)
		s2 := New(Config{Workers: 1, QueueDepth: 16, Run: r.run, Journal: jr2})
		rec := s2.Recovery()
		if rec.Lost != 0 {
			t.Fatalf("crashAt=%d: %d jobs lost (recovery %+v)", crashAt, rec.Lost, rec)
		}
		// Every job the replay knows about reaches a terminal state.
		for _, j := range s2.Jobs() {
			waitState(t, j, Done)
		}
		if got := int(rec.Recovered + rec.Requeued); got > accepted {
			t.Fatalf("crashAt=%d: replay invented jobs: %d > %d accepted", crashAt, got, accepted)
		}
		s2.Close(context.Background())
		jr2.Close()
	}
}
