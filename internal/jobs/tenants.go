// Multi-tenant admission and weighted fair-share dequeue.
//
// Each tenant owns a FIFO of queued jobs; workers pull via stride
// scheduling: a tenant's virtual "pass" advances by strideScale/weight per
// dequeued job, and the runnable tenant with the smallest pass goes next.
// Over any window where two tenants both have work queued, their dequeue
// counts converge to the ratio of their weights — a tenant flooding the
// queue cannot starve one trickling jobs in, because flooding only deepens
// its own FIFO, never lowers its pass. A tenant idle for a while re-enters
// at the scheduler's current base pass instead of its stale one, so idling
// banks no credit.
//
// Quotas are enforced at two points: MaxQueued at admission (a tenant at
// its queued cap gets ErrTenantQueueFull before the global depth check),
// and MaxRunning at dequeue (a tenant at its running cap is simply not
// runnable; its jobs wait without blocking other tenants' workers).
package jobs

import "sort"

// DefaultTenant is the tenant jobs with an empty Request.Tenant are
// accounted to. A scheduler with no Config.Tenants runs every job under it,
// which preserves the single-tenant behaviour: one FIFO, no quotas.
const DefaultTenant = "default"

// Tenant configures one tenant's identity, fair-share weight, and quotas.
// The zero quota values mean "unbounded" (only the global limits apply).
type Tenant struct {
	// Name identifies the tenant in requests, job statuses, and metrics.
	Name string `json:"name"`
	// Token is the bearer token the HTTP server authenticates the tenant
	// by. The scheduler itself never reads it.
	Token string `json:"token,omitempty"`
	// Weight is the fair-share weight (default 1): with both tenants
	// backlogged, a weight-2 tenant dequeues twice as often as a weight-1.
	Weight int `json:"weight,omitempty"`
	// MaxQueued bounds the tenant's admitted-but-not-running jobs;
	// submissions beyond it get ErrTenantQueueFull.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunning bounds the tenant's concurrently executing jobs. Jobs
	// beyond it stay queued while other tenants' jobs run.
	MaxRunning int `json:"max_running,omitempty"`
	// MutationBytesPerSec rate-limits the tenant's POST /v1/graphs/{g}/edges
	// traffic, enforced by the HTTP server's token bucket, not here.
	MutationBytesPerSec int64 `json:"mutation_bytes_per_sec,omitempty"`
}

// weight returns the effective fair-share weight.
func (t Tenant) weight() float64 {
	if t.Weight < 1 {
		return 1
	}
	return float64(t.Weight)
}

// strideScale is the stride-scheduling constant: a tenant's pass advances
// by strideScale/weight per dequeue. The value only needs to keep
// strideScale/weight well above float64 rounding for realistic weights.
const strideScale = 1 << 16

// tenantState is the scheduler-internal view of one tenant. Guarded by
// Scheduler.mu.
type tenantState struct {
	cfg   Tenant
	queue []*Job // FIFO of queued jobs (may include cancelled-while-queued)
	// queued and running are live counts; pass is the stride virtual time.
	queued  int
	running int
	pass    float64
	// submitted/done are monotonic totals for metrics and fairness audits.
	submitted int64
	done      int64
}

// tenantLocked returns the state for name (resolving "" to DefaultTenant),
// creating it on demand. New tenants join at the scheduler's base pass so
// they neither owe nor bank virtual time. Called with s.mu held.
func (s *Scheduler) tenantLocked(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{cfg: Tenant{Name: name}, pass: s.basePass}
		s.tenants[name] = t
		s.tnames = append(s.tnames, name)
		sort.Strings(s.tnames)
	}
	return t
}

// enqueueLocked appends j to its tenant's FIFO. A tenant whose queue was
// empty re-enters at the current base pass (no banked credit). Called with
// s.mu held.
func (s *Scheduler) enqueueLocked(t *tenantState, j *Job) {
	if len(t.queue) == 0 && t.pass < s.basePass {
		t.pass = s.basePass
	}
	t.queue = append(t.queue, j)
	t.queued++
	t.submitted++
	s.queuedLen++
}

// nextLocked picks the runnable tenant with the smallest pass (ties break
// toward the lexicographically smaller name, so scheduling is
// deterministic), pops its FIFO head, and charges the stride. It returns
// nil when no tenant is runnable. Called with s.mu held.
func (s *Scheduler) nextLocked() *Job {
	var best *tenantState
	for _, name := range s.tnames {
		t := s.tenants[name]
		if len(t.queue) == 0 {
			continue
		}
		if t.cfg.MaxRunning > 0 && t.running >= t.cfg.MaxRunning {
			continue
		}
		if best == nil || t.pass < best.pass {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	j := best.queue[0]
	best.queue[0] = nil // release the reference for GC
	best.queue = best.queue[1:]
	best.queued--
	best.running++
	s.queuedLen--
	s.basePass = best.pass
	best.pass += strideScale / best.cfg.weight()
	return j
}

// TenantSnapshot is a point-in-time view of one tenant's scheduler state,
// for /metrics and fairness audits.
type TenantSnapshot struct {
	Name      string `json:"name"`
	Weight    int    `json:"weight"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Submitted int64  `json:"submitted"`
	Done      int64  `json:"done"`
}

// Tenants returns a snapshot of every tenant the scheduler has seen
// (configured or auto-created), sorted by name.
func (s *Scheduler) Tenants() []TenantSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(s.tnames))
	for _, name := range s.tnames {
		t := s.tenants[name]
		w := t.cfg.Weight
		if w < 1 {
			w = 1
		}
		out = append(out, TenantSnapshot{
			Name: name, Weight: w,
			Queued: t.queued, Running: t.running,
			Submitted: t.submitted, Done: t.done,
		})
	}
	return out
}
