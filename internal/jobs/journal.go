// Journal is the write-ahead log that makes the job scheduler durable: every
// lifecycle transition (submit, start, iteration progress, final state) is
// appended as a CRC32C-framed record before it is acknowledged, so a crashed
// or killed server can replay the log at startup and put every job back into
// the state the outside world last observed.
//
// The log lives in a plain host directory — like checkpoints, it is
// operational state of the server, deliberately outside the simulated
// storage.Device whose faults it must survive. It is segmented: records are
// appended to the newest segment and the file rotates once it passes the
// configured size, so replay cost and torn-tail blast radius stay bounded.
// Each process run opens a fresh segment; earlier segments are never touched
// again, which is what makes the "only the newest segment of each run can be
// torn" replay rule sound.
//
// Frame format (little-endian):
//
//	u32 payload length | u32 CRC32C(payload) | payload (JSON Record)
//
// Replay walks segments in creation order and tolerates a truncated or
// corrupt tail in any segment — the signature a crash mid-append leaves —
// by stopping that segment at the first bad frame and continuing with the
// next segment. Submit/start/final appends are fsynced before returning
// (durability precedes acknowledgement); progress records are advisory and
// skip the sync.
package jobs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/graphsd/graphsd/internal/storage"
)

// Record types. The journal is a typed event log; see Record.
const (
	RecSubmit   = "submit"
	RecStart    = "start"
	RecProgress = "progress"
	RecFinal    = "final"
)

// Record is one journal entry. Submit carries the full request (the job is
// reconstructable from it alone); start marks an execution attempt; progress
// reports the latest completed iteration; final records the terminal state.
type Record struct {
	Type string    `json:"type"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`
	// Seq is the scheduler's submission sequence (submit records only); the
	// replayed maximum seeds the restarted scheduler's counter so job IDs
	// stay unique and deterministic across restarts.
	Seq int64 `json:"seq,omitempty"`
	// Req is the submitted request (submit records only).
	Req *Request `json:"req,omitempty"`
	// Attempt numbers execution attempts from 1 (start records; retried
	// jobs journal one start per attempt).
	Attempt int `json:"attempt,omitempty"`
	// Iter is the completed-iteration count (progress records).
	Iter int `json:"iter,omitempty"`
	// State and Error describe the terminal outcome (final records).
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// ErrJournalUnavailable is returned by Append once the journal has failed:
// after any append error the journal is considered lost for the remainder of
// the process (a real WAL on a failed disk is not coming back), and the
// scheduler degrades to shedding load instead of accepting jobs it cannot
// make durable.
var ErrJournalUnavailable = errors.New("jobs: journal unavailable")

// journalMagic opens every segment so a foreign file in the directory is
// rejected instead of replayed.
var journalMagic = [8]byte{'G', 'S', 'D', 'J', 'R', 'N', '0', '1'}

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// DefaultSegmentBytes is the rotation threshold when OpenJournal is given
// zero.
const DefaultSegmentBytes = 1 << 20

// maxFrameBytes bounds a single record; a length field beyond it is treated
// as tail corruption, not an allocation request.
const maxFrameBytes = 1 << 22

// JournalStats describes a journal's activity, for /metrics.
type JournalStats struct {
	// Records and Bytes count appends by this process (frames, not payloads).
	Records int64
	Bytes   int64
	// Segments is the number of segment files on disk, including the active
	// one.
	Segments int
	// ReplayRecords is the number of records recovered at open;
	// ReplayTruncated counts segments whose tail was torn or corrupt and was
	// discarded; ReplayTime is the wall clock the replay took.
	ReplayRecords   int64
	ReplayTruncated int
	ReplayTime      time.Duration
}

// Journal is the append-side handle. Safe for concurrent use; appends are
// serialised.
type Journal struct {
	dir      string
	segBytes int64

	mu       sync.Mutex
	f        *os.File
	segIndex int
	segSize  int64
	stats    JournalStats
	replayed []Record
	fault    func(op, name string) error
	failed   error // sticky: first append failure
	closed   bool
}

// OpenJournal opens (creating if needed) the journal in dir, replays every
// existing segment, and starts a fresh active segment for this process's
// appends. segBytes is the rotation threshold (0: DefaultSegmentBytes).
// The replayed records are available from Replayed until ConsumeReplay.
func OpenJournal(dir string, segBytes int64) (*Journal, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: journal dir: %w", err)
	}
	j := &Journal{dir: dir, segBytes: segBytes}

	start := time.Now()
	names, err := j.segmentNames()
	if err != nil {
		return nil, err
	}
	maxIdx := 0
	for _, name := range names {
		idx := segmentIndex(name)
		if idx > maxIdx {
			maxIdx = idx
		}
		recs, truncated, err := replaySegment(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("jobs: journal segment %s: %w", name, err)
		}
		if truncated {
			j.stats.ReplayTruncated++
		}
		j.replayed = append(j.replayed, recs...)
	}
	j.stats.ReplayRecords = int64(len(j.replayed))
	j.stats.ReplayTime = time.Since(start)
	j.stats.Segments = len(names)

	j.segIndex = maxIdx + 1
	if err := j.openSegment(); err != nil {
		return nil, err
	}
	return j, nil
}

// segmentNames lists the journal's segment files in index order.
func (j *Journal) segmentNames() ([]string, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: journal dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && segmentIndex(e.Name()) > 0 {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(a, b int) bool { return segmentIndex(names[a]) < segmentIndex(names[b]) })
	return names, nil
}

func segmentName(idx int) string { return fmt.Sprintf("journal-%06d.wal", idx) }

// segmentIndex parses a segment file name, returning 0 for foreign files.
func segmentIndex(name string) int {
	var idx int
	if _, err := fmt.Sscanf(name, "journal-%06d.wal", &idx); err != nil {
		return 0
	}
	return idx
}

// openSegment creates the segment at j.segIndex, writes the magic header,
// and fsyncs file and directory so the segment survives a crash.
func (j *Journal) openSegment() error {
	p := filepath.Join(j.dir, segmentName(j.segIndex))
	f, err := os.OpenFile(p, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: journal segment: %w", err)
	}
	if _, err := f.Write(journalMagic[:]); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(p)
		return fmt.Errorf("jobs: journal segment: %w", err)
	}
	if d, err := os.Open(j.dir); err == nil {
		d.Sync()
		d.Close()
	}
	j.f = f
	j.segSize = int64(len(journalMagic))
	j.stats.Segments++
	return nil
}

// Replayed returns the records recovered when the journal was opened, in
// append order.
func (j *Journal) Replayed() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// ConsumeReplay returns the replayed records and releases the journal's
// reference to them.
func (j *Journal) ConsumeReplay() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	recs := j.replayed
	j.replayed = nil
	return recs
}

// SetFaultInjector installs fn on the append path, for chaos tests: it is
// consulted with op "append" and the active segment's name before every
// append. An error wrapping storage.ErrTornWrite leaves a torn half-frame on
// disk (the signature of a crash mid-append); any error marks the journal
// failed — every later Append returns ErrJournalUnavailable. A
// storage.Chaos injector slots in directly.
func (j *Journal) SetFaultInjector(fn func(op, name string) error) {
	j.mu.Lock()
	j.fault = fn
	j.mu.Unlock()
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Err returns the sticky failure that made the journal unavailable, nil
// while it is healthy.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Append journals rec. Submit, start, and final records are fsynced before
// returning; progress records are buffered by the OS (their loss costs only
// a progress display). After the first failure every call returns
// ErrJournalUnavailable.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: journal encode: %w", err)
	}
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, journalCRC))
	frame = append(frame, payload...)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return fmt.Errorf("%w: %v", ErrJournalUnavailable, j.failed)
	}
	if j.closed {
		return fmt.Errorf("%w: closed", ErrJournalUnavailable)
	}
	if j.fault != nil {
		if ferr := j.fault("append", segmentName(j.segIndex)); ferr != nil {
			if errors.Is(ferr, storage.ErrTornWrite) {
				// A crash mid-append: a prefix of the frame reaches the disk
				// and nothing after it ever will.
				j.f.Write(frame[:len(frame)/2])
				j.f.Sync()
			}
			j.failed = ferr
			return fmt.Errorf("%w: %w", ErrJournalUnavailable, ferr)
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		j.failed = err
		return fmt.Errorf("%w: %v", ErrJournalUnavailable, err)
	}
	if rec.Type != RecProgress {
		if err := j.f.Sync(); err != nil {
			j.failed = err
			return fmt.Errorf("%w: %v", ErrJournalUnavailable, err)
		}
	}
	j.segSize += int64(len(frame))
	j.stats.Records++
	j.stats.Bytes += int64(len(frame))
	if j.segSize >= j.segBytes {
		if err := j.rotate(); err != nil {
			j.failed = err
			return fmt.Errorf("%w: %v", ErrJournalUnavailable, err)
		}
	}
	return nil
}

// rotate seals the active segment and opens the next. Called with mu held.
func (j *Journal) rotate() error {
	if err := j.f.Sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	j.segIndex++
	return j.openSegment()
}

// Close seals the journal; subsequent appends fail with
// ErrJournalUnavailable. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	serr := j.f.Sync()
	cerr := j.f.Close()
	return errors.Join(serr, cerr)
}

// replaySegment decodes one segment, stopping at the first bad frame.
// truncated reports whether anything after the last good frame was
// discarded. A missing or foreign magic header is an error — that is not
// the signature of a crash.
func replaySegment(path string) (recs []Record, truncated bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != string(journalMagic[:]) {
		return nil, false, fmt.Errorf("bad segment magic")
	}
	data = data[len(journalMagic):]
	for len(data) > 0 {
		if len(data) < 8 {
			return recs, true, nil
		}
		n := binary.LittleEndian.Uint32(data)
		want := binary.LittleEndian.Uint32(data[4:])
		if n > maxFrameBytes || int(n) > len(data)-8 {
			return recs, true, nil
		}
		payload := data[8 : 8+n]
		if crc32.Checksum(payload, journalCRC) != want {
			return recs, true, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, true, nil
		}
		recs = append(recs, rec)
		data = data[8+n:]
	}
	return recs, false, nil
}
