// Journal is the write-ahead log that makes the job scheduler durable: every
// lifecycle transition (submit, start, iteration progress, final state) is
// appended as a CRC32C-framed record before it is acknowledged, so a crashed
// or killed server can replay the log at startup and put every job back into
// the state the outside world last observed.
//
// The framing, segmentation and torn-tail recovery discipline live in
// internal/wal (shared with the mutable-graph mutation log); this file owns
// the JSON record encoding and which record types must be fsynced before
// acknowledgement: submit/start/final are, progress records are advisory
// and skip the sync.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/graphsd/graphsd/internal/wal"
)

// Record types. The journal is a typed event log; see Record.
const (
	RecSubmit   = "submit"
	RecStart    = "start"
	RecProgress = "progress"
	RecFinal    = "final"
)

// Record is one journal entry. Submit carries the full request (the job is
// reconstructable from it alone); start marks an execution attempt; progress
// reports the latest completed iteration; final records the terminal state.
type Record struct {
	Type string    `json:"type"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`
	// Seq is the scheduler's submission sequence (submit records only); the
	// replayed maximum seeds the restarted scheduler's counter so job IDs
	// stay unique and deterministic across restarts.
	Seq int64 `json:"seq,omitempty"`
	// Req is the submitted request (submit records only).
	Req *Request `json:"req,omitempty"`
	// Attempt numbers execution attempts from 1 (start records; retried
	// jobs journal one start per attempt).
	Attempt int `json:"attempt,omitempty"`
	// Iter is the completed-iteration count (progress records).
	Iter int `json:"iter,omitempty"`
	// State and Error describe the terminal outcome (final records).
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// ErrJournalUnavailable is returned by Append once the journal has failed:
// after any append error the journal is considered lost for the remainder of
// the process (a real WAL on a failed disk is not coming back), and the
// scheduler degrades to shedding load instead of accepting jobs it cannot
// make durable.
var ErrJournalUnavailable = errors.New("jobs: journal unavailable")

// journalMagic opens every segment so a foreign file in the directory is
// rejected instead of replayed.
var journalMagic = [8]byte{'G', 'S', 'D', 'J', 'R', 'N', '0', '1'}

// DefaultSegmentBytes is the rotation threshold when OpenJournal is given
// zero.
const DefaultSegmentBytes = wal.DefaultSegmentBytes

// JournalStats describes a journal's activity, for /metrics.
type JournalStats struct {
	// Records and Bytes count appends by this process (frames, not payloads).
	Records int64
	Bytes   int64
	// Segments is the number of segment files on disk, including the active
	// one.
	Segments int
	// ReplayRecords is the number of records recovered at open;
	// ReplayTruncated counts segments whose tail was torn or corrupt and was
	// discarded; ReplayTime is the wall clock the replay took.
	ReplayRecords   int64
	ReplayTruncated int
	ReplayTime      time.Duration
}

// Journal is the append-side handle. Safe for concurrent use; appends are
// serialised.
type Journal struct {
	log      *wal.Log
	replayed []Record
}

// OpenJournal opens (creating if needed) the journal in dir, replays every
// existing segment, and starts a fresh active segment for this process's
// appends. segBytes is the rotation threshold (0: DefaultSegmentBytes).
// The replayed records are available from Replayed until ConsumeReplay.
func OpenJournal(dir string, segBytes int64) (*Journal, error) {
	log, err := wal.Open(dir, wal.Options{
		Prefix:       "journal",
		Magic:        journalMagic,
		SegmentBytes: segBytes,
		// A CRC-valid frame that does not decode as a Record is tail
		// corruption for replay purposes, same as a torn frame.
		Accept: func(payload []byte) bool {
			var rec Record
			return json.Unmarshal(payload, &rec) == nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	j := &Journal{log: log}
	for _, payload := range log.ConsumeReplay() {
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// Accept already validated the payload; a failure here is a
			// programming error, not a disk state.
			return nil, fmt.Errorf("jobs: journal replay: %w", err)
		}
		j.replayed = append(j.replayed, rec)
	}
	return j, nil
}

// Replayed returns the records recovered when the journal was opened, in
// append order.
func (j *Journal) Replayed() []Record { return j.replayed }

// ConsumeReplay returns the replayed records and releases the journal's
// reference to them.
func (j *Journal) ConsumeReplay() []Record {
	recs := j.replayed
	j.replayed = nil
	return recs
}

// SetFaultInjector installs fn on the append path, for chaos tests: it is
// consulted with op "append" and the active segment's name before every
// append. An error wrapping storage.ErrTornWrite leaves a torn half-frame on
// disk (the signature of a crash mid-append); any error marks the journal
// failed — every later Append returns ErrJournalUnavailable. A
// storage.Chaos injector slots in directly.
func (j *Journal) SetFaultInjector(fn func(op, name string) error) { j.log.SetFaultInjector(fn) }

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() JournalStats {
	s := j.log.Stats()
	return JournalStats{
		Records:         s.Records,
		Bytes:           s.Bytes,
		Segments:        s.Segments,
		ReplayRecords:   s.ReplayRecords,
		ReplayTruncated: s.ReplayTruncated,
		ReplayTime:      s.ReplayTime,
	}
}

// Err returns the sticky failure that made the journal unavailable, nil
// while it is healthy.
func (j *Journal) Err() error { return j.log.Err() }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.log.Dir() }

// Append journals rec. Submit, start, and final records are fsynced before
// returning; progress records are buffered by the OS (their loss costs only
// a progress display). After the first failure every call returns
// ErrJournalUnavailable.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: journal encode: %w", err)
	}
	if err := j.log.Append(payload, rec.Type != RecProgress); err != nil {
		return fmt.Errorf("%w: %w", ErrJournalUnavailable, err)
	}
	return nil
}

// Close seals the journal; subsequent appends fail with
// ErrJournalUnavailable. Idempotent.
func (j *Journal) Close() error { return j.log.Close() }

// segmentName / segmentIndex mirror the wal package's segment naming for
// the journal's prefix; tests use them to locate and forge segment files.
func segmentName(idx int) string { return fmt.Sprintf("journal-%06d.wal", idx) }

func segmentIndex(name string) int {
	var idx int
	if _, err := fmt.Sscanf(name, "journal-%06d.wal", &idx); err != nil {
		return 0
	}
	return idx
}
