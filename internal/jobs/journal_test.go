package jobs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/graphsd/graphsd/internal/storage"
)

// appendAll journals the records, failing the test on the first error.
func appendAll(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
	}
}

// lastSegment returns the path of the journal directory's highest-indexed
// segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best, bestIdx := "", 0
	for _, e := range entries {
		if idx := segmentIndex(e.Name()); idx > bestIdx {
			best, bestIdx = e.Name(), idx
		}
	}
	if best == "" {
		t.Fatal("no segment files")
	}
	return filepath.Join(dir, best)
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Graph: "g", Algorithm: "pr", MaxIterations: 5}
	appendAll(t, j,
		Record{Type: RecSubmit, ID: "j00001-aaaa", Time: time.Now(), Seq: 1, Req: &req},
		Record{Type: RecStart, ID: "j00001-aaaa", Attempt: 1},
		Record{Type: RecProgress, ID: "j00001-aaaa", Iter: 3},
		Record{Type: RecFinal, ID: "j00001-aaaa", State: "done"},
	)
	st := j.Stats()
	if st.Records != 4 || st.Bytes <= 0 {
		t.Fatalf("stats after appends: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: RecFinal, ID: "x"}); !errors.Is(err, ErrJournalUnavailable) {
		t.Fatalf("append after close: %v", err)
	}

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Replayed()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	types := []string{RecSubmit, RecStart, RecProgress, RecFinal}
	for i, want := range types {
		if recs[i].Type != want || recs[i].ID != "j00001-aaaa" {
			t.Fatalf("record %d: %+v, want type %s", i, recs[i], want)
		}
	}
	if recs[0].Req == nil || recs[0].Req.Graph != "g" || recs[0].Seq != 1 {
		t.Fatalf("submit record lost its request: %+v", recs[0])
	}
	if recs[2].Iter != 3 || recs[3].State != "done" {
		t.Fatalf("progress/final fields lost: %+v %+v", recs[2], recs[3])
	}
	st = j2.Stats()
	if st.ReplayRecords != 4 || st.ReplayTruncated != 0 {
		t.Fatalf("replay stats: %+v", st)
	}
	if got := j2.ConsumeReplay(); len(got) != 4 {
		t.Fatalf("ConsumeReplay returned %d", len(got))
	}
	if got := j2.Replayed(); got != nil {
		t.Fatalf("Replayed after consume: %v", got)
	}
}

// TestJournalTornTail appends garbage after the last good frame — the
// signature of a crash mid-append — and expects replay to keep every good
// record and silently discard the tail.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Graph: "g", Algorithm: "pr"}
	appendAll(t, j,
		Record{Type: RecSubmit, ID: "a", Seq: 1, Req: &req},
		Record{Type: RecFinal, ID: "a", State: "done"},
	)
	j.Close()

	for name, tail := range map[string][]byte{
		"short-header":    {0x01, 0x02, 0x03},
		"half-frame":      append(binary.LittleEndian.AppendUint32(nil, 400), 0xde, 0xad, 0xbe, 0xef, 'x', 'y'),
		"oversize-length": binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, 1<<30), 0),
	} {
		t.Run(name, func(t *testing.T) {
			seg := lastSegment(t, dir)
			good, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, append(append([]byte{}, good...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			j2, err := OpenJournal(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			defer os.WriteFile(seg, good, 0o644) // restore for the next case
			recs := j2.ConsumeReplay()
			if len(recs) != 2 || recs[0].ID != "a" || recs[1].State != "done" {
				t.Fatalf("replayed %+v, want the 2 good records", recs)
			}
			if st := j2.Stats(); st.ReplayTruncated != 1 {
				t.Fatalf("ReplayTruncated = %d, want 1", st.ReplayTruncated)
			}
		})
	}
}

// TestJournalCorruptMiddleRecord flips a payload byte of an interior frame;
// replay must stop that segment at the corrupt frame (CRC catches it) and
// keep only the records before it.
func TestJournalCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Graph: "g", Algorithm: "pr"}
	appendAll(t, j,
		Record{Type: RecSubmit, ID: "a", Seq: 1, Req: &req},
		Record{Type: RecSubmit, ID: "b", Seq: 2, Req: &req},
		Record{Type: RecFinal, ID: "a", State: "done"},
	)
	j.Close()

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the second frame: skip magic, then the first frame.
	off := len(journalMagic)
	n := binary.LittleEndian.Uint32(data[off:])
	off += 8 + int(n)
	data[off+8] ^= 0xff // corrupt the second frame's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.ConsumeReplay()
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("replayed %+v, want only the first record", recs)
	}
	if st := j2.Stats(); st.ReplayTruncated != 1 {
		t.Fatalf("ReplayTruncated = %d, want 1", st.ReplayTruncated)
	}
}

func TestJournalForeignMagicRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte("NOTAJRNL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, 0); err == nil {
		t.Fatal("OpenJournal accepted a segment with foreign magic")
	}
}

// TestJournalSegmentRotation drives the journal past several rotation
// thresholds mid-"job" and expects replay to stitch the segments back into
// one ordered stream.
func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 256) // tiny segments: rotate every few records
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Graph: "g", Algorithm: "pr"}
	const n = 40
	appendAll(t, j, Record{Type: RecSubmit, ID: "job", Seq: 1, Req: &req})
	for i := 1; i < n-1; i++ {
		appendAll(t, j, Record{Type: RecProgress, ID: "job", Iter: i})
	}
	appendAll(t, j, Record{Type: RecFinal, ID: "job", State: "done"})
	if st := j.Stats(); st.Segments < 3 {
		t.Fatalf("only %d segments after %d small-threshold appends", st.Segments, n)
	}
	j.Close()

	j2, err := OpenJournal(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.ConsumeReplay()
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}
	for i := 1; i < n-1; i++ {
		if recs[i].Type != RecProgress || recs[i].Iter != i {
			t.Fatalf("record %d out of order: %+v", i, recs[i])
		}
	}
	if recs[0].Type != RecSubmit || recs[n-1].Type != RecFinal {
		t.Fatalf("stream endpoints wrong: %+v ... %+v", recs[0], recs[n-1])
	}
}

// TestJournalStickyFailure: after any append failure the journal is lost for
// the process — every later append reports ErrJournalUnavailable without
// touching the disk.
func TestJournalStickyFailure(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	boom := errors.New("injected")
	fail := true
	j.SetFaultInjector(func(op, name string) error {
		if fail {
			return boom
		}
		return nil
	})
	if err := j.Append(Record{Type: RecSubmit, ID: "a"}); !errors.Is(err, ErrJournalUnavailable) {
		t.Fatalf("first append: %v", err)
	}
	fail = false // injector healthy again — the journal must stay down
	if err := j.Append(Record{Type: RecSubmit, ID: "b"}); !errors.Is(err, ErrJournalUnavailable) {
		t.Fatalf("append after failure: %v", err)
	}
	if j.Err() == nil {
		t.Fatal("Err() nil after failure")
	}
	if st := j.Stats(); st.Records != 0 {
		t.Fatalf("failed appends counted: %+v", st)
	}
}

// TestJournalTornWriteFault: a fault wrapping storage.ErrTornWrite leaves
// half the frame on disk; replay after "restart" must truncate it and keep
// every record appended before the tear.
func TestJournalTornWriteFault(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Graph: "g", Algorithm: "pr"}
	appendAll(t, j,
		Record{Type: RecSubmit, ID: "a", Seq: 1, Req: &req},
		Record{Type: RecSubmit, ID: "b", Seq: 2, Req: &req},
	)
	j.SetFaultInjector(func(op, name string) error {
		return fmt.Errorf("chaos: %w", storage.ErrTornWrite)
	})
	// The torn final: "a" finished but the crash ate the record.
	if err := j.Append(Record{Type: RecFinal, ID: "a", State: "done"}); !errors.Is(err, ErrJournalUnavailable) {
		t.Fatalf("torn append: %v", err)
	}
	j.Close()

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.ConsumeReplay()
	if len(recs) != 2 || recs[0].ID != "a" || recs[1].ID != "b" {
		t.Fatalf("replayed %+v, want the 2 submits", recs)
	}
	for _, r := range recs {
		if r.Type != RecSubmit {
			t.Fatalf("torn final survived replay: %+v", r)
		}
	}
	if st := j2.Stats(); st.ReplayTruncated != 1 {
		t.Fatalf("ReplayTruncated = %d, want 1", st.ReplayTruncated)
	}
}

// TestJournalChaosInjector wires a storage.Chaos crash-at-op injector — the
// same one the restart suite uses — directly into the journal and checks the
// crash point lands on the configured append.
func TestJournalChaosInjector(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	chaos := storage.NewChaos(storage.ChaosOptions{
		Seed:          1,
		CrashAfterOps: 3,
		Match:         func(op, name string) bool { return op == "append" },
	})
	j.SetFaultInjector(chaos.Injector())
	req := Request{Graph: "g", Algorithm: "pr"}
	var firstErr error
	for i := 1; i <= 6; i++ {
		err := j.Append(Record{Type: RecSubmit, ID: fmt.Sprintf("j%d", i), Seq: int64(i), Req: &req})
		if err != nil && firstErr == nil {
			firstErr = err
			if i != 4 {
				t.Fatalf("crash landed on append %d, want 4 (after 3 ops)", i)
			}
		}
	}
	if firstErr == nil {
		t.Fatal("chaos crash point never fired")
	}
	if !errors.Is(firstErr, storage.ErrCrashed) || !errors.Is(firstErr, ErrJournalUnavailable) {
		t.Fatalf("crash error = %v", firstErr)
	}
	j.Close()

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if recs := j2.ConsumeReplay(); len(recs) != 3 {
		t.Fatalf("replayed %d records, want the 3 pre-crash ones", len(recs))
	}
}

// TestJournalFreshSegmentPerOpen: every open starts a new segment and never
// appends to an old one, so a previously-torn segment stays torn and new
// records land after it in replay order.
func TestJournalFreshSegmentPerOpen(t *testing.T) {
	dir := t.TempDir()
	req := Request{Graph: "g", Algorithm: "pr"}
	for i := 1; i <= 3; i++ {
		j, err := OpenJournal(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, j, Record{Type: RecSubmit, ID: fmt.Sprintf("run%d", i), Seq: int64(i), Req: &req})
		j.Close()
	}
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	recs := j.ConsumeReplay()
	if len(recs) != 3 {
		t.Fatalf("replayed %d, want 3", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("run%d", i+1); r.ID != want {
			t.Fatalf("replay order broken: record %d is %q, want %q", i, r.ID, want)
		}
	}
	if st := j.Stats(); st.Segments != 4 { // 3 sealed + this open's fresh one
		t.Fatalf("segments = %d, want 4", st.Segments)
	}
}
