package algorithms

import (
	"math"
	"testing"

	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func buildTestLayout(t *testing.T, g *graph.Graph, p int) *partition.Layout {
	t.Helper()
	dev, err := storage.OpenDevice(t.TempDir(), storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	l, err := partition.Build(dev, g, p)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestWidestPathOnDiamond(t *testing.T) {
	// 0 -> 1 (cap 5) -> 3 (cap 2)  => bottleneck 2
	// 0 -> 2 (cap 3) -> 3 (cap 3)  => bottleneck 3 (wider)
	g := &graph.Graph{
		NumVertices: 4,
		Weighted:    true,
		Edges: []graph.Edge{
			{Src: 0, Dst: 1, Weight: 5},
			{Src: 1, Dst: 3, Weight: 2},
			{Src: 0, Dst: 2, Weight: 3},
			{Src: 2, Dst: 3, Weight: 3},
		},
	}
	out, _ := core.RunReference(g, &WidestPath{Source: 0}, 0)
	if !math.IsInf(out[0], 1) {
		t.Fatalf("source capacity = %v", out[0])
	}
	if out[1] != 5 || out[2] != 3 {
		t.Fatalf("direct capacities = %v %v", out[1], out[2])
	}
	if out[3] != 3 {
		t.Fatalf("bottleneck(3) = %v, want 3 (via vertex 2)", out[3])
	}
}

func TestWidestPathUnreachable(t *testing.T) {
	g := gen.Weighted(gen.Chain(5), 4, 1)
	out, _ := core.RunReference(g, &WidestPath{Source: 2}, 0)
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("upstream vertices reached: %v %v", out[0], out[1])
	}
	if out[3] == 0 || out[4] == 0 {
		t.Fatal("downstream vertices not reached")
	}
}

func TestReachabilityMatchesBFSCover(t *testing.T) {
	g, err := gen.RMAT(8, 6, gen.Graph500, 31)
	if err != nil {
		t.Fatal(err)
	}
	reach, _ := core.RunReference(g, &Reachability{Source: 0}, 0)
	depth, _ := core.RunReference(g, &BFS{Source: 0}, 0)
	for v := range reach {
		reached := reach[v] == 1 || v == 0
		byDepth := !math.IsInf(depth[v], 1)
		if reached != byDepth {
			t.Fatalf("vertex %d: reach=%v bfs-depth=%v", v, reach[v], depth[v])
		}
	}
}

func TestExtraProgramsOnEngine(t *testing.T) {
	// The extension algorithms must run identically on the out-of-core
	// engine; exercised through the full config matrix elsewhere, spot-
	// checked here.
	g := gen.Weighted(gen.Chain(30), 9, 2)
	want, _ := core.RunReference(g, &WidestPath{Source: 0}, 0)
	layout := buildTestLayout(t, g, 3)
	res, err := core.Run(layout, &WidestPath{Source: 0}, core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		a, b := res.Outputs[v], want[v]
		if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
			t.Fatalf("vertex %d: %v want %v", v, a, b)
		}
	}
}

func TestSymmetrize(t *testing.T) {
	g := &graph.Graph{
		NumVertices: 3,
		Weighted:    true,
		Edges:       []graph.Edge{{Src: 0, Dst: 1, Weight: 2}, {Src: 1, Dst: 2, Weight: 3}},
	}
	s := graph.Symmetrize(g)
	if s.NumEdges() != 4 {
		t.Fatalf("symmetrized edges = %d, want 4", s.NumEdges())
	}
	if s.Edges[2] != (graph.Edge{Src: 1, Dst: 0, Weight: 2}) {
		t.Fatalf("mirror edge = %v", s.Edges[2])
	}
	// Original untouched.
	if g.NumEdges() != 2 {
		t.Fatal("Symmetrize mutated its input")
	}
	// CC on the symmetrized chain collapses to one component.
	out, _ := core.RunReference(graph.Symmetrize(gen.Chain(10)), &ConnectedComponents{}, 0)
	for v, l := range out {
		if l != 0 {
			t.Fatalf("vertex %d label %v after symmetrized CC", v, l)
		}
	}
}

func TestByNameExtras(t *testing.T) {
	for _, name := range []string{"widestpath", "wp", "reach", "reachability"} {
		p, err := ByName(name, 3)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		switch prog := p.(type) {
		case *WidestPath:
			if prog.Source != 3 {
				t.Fatal("source not set")
			}
		case *Reachability:
			if prog.Source != 3 {
				t.Fatal("source not set")
			}
		default:
			t.Fatalf("ByName(%s) returned %T", name, p)
		}
	}
}
