package algorithms

import (
	"math"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
)

// WidestPath computes the maximum-bottleneck path capacity from a source:
// the value of v is the largest w such that some path source→v exists
// whose minimum edge weight is w. A classic label-correcting workload with
// monotonically increasing values (Merge = max, Gather = min(src, w)),
// complementary to SSSP's decreasing ones; used here as an extension
// workload exercising the engines beyond the paper's four algorithms.
type WidestPath struct {
	// Source is the root vertex.
	Source graph.VertexID
	// MaxIters caps the relaxation rounds (default 1000).
	MaxIters int
}

var _ core.Program = (*WidestPath)(nil)

// Name implements core.Program.
func (p *WidestPath) Name() string { return "widestpath" }

// Weighted implements core.Program.
func (p *WidestPath) Weighted() bool { return true }

// AlwaysActive implements core.Program.
func (p *WidestPath) AlwaysActive() bool { return false }

// MaxIterations implements core.Program.
func (p *WidestPath) MaxIterations() int {
	if p.MaxIters > 0 {
		return p.MaxIters
	}
	return 1000
}

// HasAux implements core.Program.
func (p *WidestPath) HasAux() bool { return false }

// Init implements core.Program. The source has infinite capacity to
// itself; everything else starts unreachable (capacity 0).
func (p *WidestPath) Init(n int, values, aux []float64, active *bitset.ActiveSet) {
	for v := range values {
		values[v] = 0
	}
	if int(p.Source) < n {
		values[p.Source] = math.Inf(1)
		active.Activate(int(p.Source))
	}
}

// Identity implements core.Program.
func (p *WidestPath) Identity() float64 { return 0 }

// Gather implements core.Program: a path through e is throttled by e's
// weight.
func (p *WidestPath) Gather(srcVal float64, e graph.Edge, srcOutDeg uint32) float64 {
	return math.Min(srcVal, float64(e.Weight))
}

// Merge implements core.Program.
func (p *WidestPath) Merge(a, b float64) float64 { return math.Max(a, b) }

// Apply implements core.Program.
func (p *WidestPath) Apply(v graph.VertexID, old, merged float64, aux []float64, n int) (float64, bool) {
	if merged > old {
		return merged, true
	}
	return old, false
}

// Output implements core.Program.
func (p *WidestPath) Output(v graph.VertexID, val float64, aux []float64) float64 { return val }

// Reachability marks every vertex reachable from the source with 1. It is
// the cheapest possible traversal (one bit of state), making it the
// sharpest showcase of selective loading: the frontier is the only thing
// ever worth reading.
type Reachability struct {
	// Source is the root vertex.
	Source graph.VertexID
	// MaxIters caps the traversal (default 1000).
	MaxIters int
}

var _ core.Program = (*Reachability)(nil)

// Name implements core.Program.
func (p *Reachability) Name() string { return "reachability" }

// Weighted implements core.Program.
func (p *Reachability) Weighted() bool { return false }

// AlwaysActive implements core.Program.
func (p *Reachability) AlwaysActive() bool { return false }

// MaxIterations implements core.Program.
func (p *Reachability) MaxIterations() int {
	if p.MaxIters > 0 {
		return p.MaxIters
	}
	return 1000
}

// HasAux implements core.Program.
func (p *Reachability) HasAux() bool { return false }

// Init implements core.Program.
func (p *Reachability) Init(n int, values, aux []float64, active *bitset.ActiveSet) {
	if int(p.Source) < n {
		values[p.Source] = 1
		active.Activate(int(p.Source))
	}
}

// Identity implements core.Program.
func (p *Reachability) Identity() float64 { return 0 }

// Gather implements core.Program.
func (p *Reachability) Gather(srcVal float64, e graph.Edge, srcOutDeg uint32) float64 {
	return srcVal
}

// Merge implements core.Program.
func (p *Reachability) Merge(a, b float64) float64 { return math.Max(a, b) }

// Apply implements core.Program: a vertex activates exactly once, when
// first reached.
func (p *Reachability) Apply(v graph.VertexID, old, merged float64, aux []float64, n int) (float64, bool) {
	if merged > old {
		return merged, true
	}
	return old, false
}

// Output implements core.Program.
func (p *Reachability) Output(v graph.VertexID, val float64, aux []float64) float64 { return val }
