// Package algorithms provides the vertex programs evaluated in the paper —
// PageRank (PR), PageRank-Delta (PR-D), Connected Components (CC) and
// Single-Source Shortest Path (SSSP) — plus Breadth-First Search, each
// expressed against the core.Program interface so that every engine
// (GraphSD, its ablations, and the baselines) runs the identical algorithm
// code.
package algorithms

import (
	"fmt"
	"math"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
)

// Damping is the PageRank damping factor used throughout.
const Damping = 0.85

// PageRank is the classic synchronous PageRank: every vertex is active in
// every iteration; one iteration computes
//
//	rank'(v) = (1-d)/n + d * Σ_{u→v} rank(u)/outdeg(u).
//
// The paper runs it for 5 iterations.
type PageRank struct {
	// Iterations is the fixed iteration count (default 5, as in the paper).
	Iterations int
}

var _ core.Program = (*PageRank)(nil)

// Name implements core.Program.
func (p *PageRank) Name() string { return "pagerank" }

// Weighted implements core.Program.
func (p *PageRank) Weighted() bool { return false }

// AlwaysActive implements core.Program: plain PR updates every vertex.
func (p *PageRank) AlwaysActive() bool { return true }

// MaxIterations implements core.Program.
func (p *PageRank) MaxIterations() int {
	if p.Iterations > 0 {
		return p.Iterations
	}
	return 5
}

// HasAux implements core.Program.
func (p *PageRank) HasAux() bool { return false }

// Init implements core.Program.
func (p *PageRank) Init(n int, values, aux []float64, active *bitset.ActiveSet) {
	for v := range values {
		values[v] = 1.0 / float64(n)
	}
	active.ActivateAll()
}

// Identity implements core.Program.
func (p *PageRank) Identity() float64 { return 0 }

// Gather implements core.Program.
func (p *PageRank) Gather(srcVal float64, e graph.Edge, srcOutDeg uint32) float64 {
	if srcOutDeg == 0 {
		return 0
	}
	return srcVal / float64(srcOutDeg)
}

// Merge implements core.Program.
func (p *PageRank) Merge(a, b float64) float64 { return a + b }

// Apply implements core.Program.
func (p *PageRank) Apply(v graph.VertexID, old, merged float64, aux []float64, n int) (float64, bool) {
	return (1-Damping)/float64(n) + Damping*merged, true
}

// Output implements core.Program.
func (p *PageRank) Output(v graph.VertexID, val float64, aux []float64) float64 { return val }

// PageRankDelta is the incremental PageRank variant (PR-D): a vertex's
// value is the rank *delta* it must propagate; its accumulated rank lives
// in the aux array. A vertex is re-activated only when it receives enough
// change (Tolerance), so the active set shrinks over iterations — the
// behaviour GraphSD's selective scheduling exploits. The paper runs 20
// iterations.
type PageRankDelta struct {
	// Iterations is the fixed iteration bound (default 20, as in the paper).
	Iterations int
	// Tolerance is the minimum delta that re-activates a vertex
	// (default 1e-9).
	Tolerance float64
}

var _ core.Program = (*PageRankDelta)(nil)

func (p *PageRankDelta) tolerance() float64 {
	if p.Tolerance > 0 {
		return p.Tolerance
	}
	return 1e-9
}

// Name implements core.Program.
func (p *PageRankDelta) Name() string { return "pagerank-delta" }

// Weighted implements core.Program.
func (p *PageRankDelta) Weighted() bool { return false }

// AlwaysActive implements core.Program.
func (p *PageRankDelta) AlwaysActive() bool { return false }

// MaxIterations implements core.Program.
func (p *PageRankDelta) MaxIterations() int {
	if p.Iterations > 0 {
		return p.Iterations
	}
	return 20
}

// HasAux implements core.Program: aux holds the accumulated rank.
func (p *PageRankDelta) HasAux() bool { return true }

// Init implements core.Program. Every vertex starts with rank (1-d)/n and
// propagates that same quantity as its first delta.
func (p *PageRankDelta) Init(n int, values, aux []float64, active *bitset.ActiveSet) {
	base := (1 - Damping) / float64(n)
	for v := range values {
		values[v] = base
		aux[v] = base
	}
	active.ActivateAll()
}

// Identity implements core.Program.
func (p *PageRankDelta) Identity() float64 { return 0 }

// Gather implements core.Program.
func (p *PageRankDelta) Gather(srcVal float64, e graph.Edge, srcOutDeg uint32) float64 {
	if srcOutDeg == 0 {
		return 0
	}
	return srcVal / float64(srcOutDeg)
}

// Merge implements core.Program.
func (p *PageRankDelta) Merge(a, b float64) float64 { return a + b }

// Apply implements core.Program: the received delta mass becomes the new
// delta; it is folded into the rank and propagated further only if it
// exceeds the tolerance.
func (p *PageRankDelta) Apply(v graph.VertexID, old, merged float64, aux []float64, n int) (float64, bool) {
	delta := Damping * merged
	if math.Abs(delta) <= p.tolerance() {
		return 0, false
	}
	aux[v] += delta
	return delta, true
}

// Output implements core.Program: the user-facing result is the rank.
func (p *PageRankDelta) Output(v graph.VertexID, val float64, aux []float64) float64 {
	return aux[v]
}

// ConnectedComponents is label propagation over directed edges: every
// vertex starts with its own ID as label and propagates the minimum label
// seen. On directed graphs it computes the "reachability components" of
// label propagation, exactly as out-of-core systems implement CC
// (GraphChi, GridGraph); run it on a symmetrized graph for undirected
// semantics.
type ConnectedComponents struct {
	// MaxIters caps the propagation (default 1000; label propagation
	// converges in O(diameter) iterations).
	MaxIters int
}

var _ core.Program = (*ConnectedComponents)(nil)

// Name implements core.Program.
func (c *ConnectedComponents) Name() string { return "cc" }

// Weighted implements core.Program.
func (c *ConnectedComponents) Weighted() bool { return false }

// AlwaysActive implements core.Program.
func (c *ConnectedComponents) AlwaysActive() bool { return false }

// MaxIterations implements core.Program.
func (c *ConnectedComponents) MaxIterations() int {
	if c.MaxIters > 0 {
		return c.MaxIters
	}
	return 1000
}

// HasAux implements core.Program.
func (c *ConnectedComponents) HasAux() bool { return false }

// Init implements core.Program.
func (c *ConnectedComponents) Init(n int, values, aux []float64, active *bitset.ActiveSet) {
	for v := range values {
		values[v] = float64(v)
	}
	active.ActivateAll()
}

// Identity implements core.Program.
func (c *ConnectedComponents) Identity() float64 { return math.Inf(1) }

// Gather implements core.Program.
func (c *ConnectedComponents) Gather(srcVal float64, e graph.Edge, srcOutDeg uint32) float64 {
	return srcVal
}

// Merge implements core.Program.
func (c *ConnectedComponents) Merge(a, b float64) float64 { return math.Min(a, b) }

// Apply implements core.Program.
func (c *ConnectedComponents) Apply(v graph.VertexID, old, merged float64, aux []float64, n int) (float64, bool) {
	if merged < old {
		return merged, true
	}
	return old, false
}

// Output implements core.Program.
func (c *ConnectedComponents) Output(v graph.VertexID, val float64, aux []float64) float64 {
	return val
}

// SSSP is single-source shortest path over non-negative edge weights
// (Bellman-Ford-style label correction, the standard out-of-core
// formulation).
type SSSP struct {
	// Source is the root vertex.
	Source graph.VertexID
	// MaxIters caps the relaxation rounds (default 1000).
	MaxIters int
}

var _ core.Program = (*SSSP)(nil)

// Name implements core.Program.
func (s *SSSP) Name() string { return "sssp" }

// Weighted implements core.Program.
func (s *SSSP) Weighted() bool { return true }

// AlwaysActive implements core.Program.
func (s *SSSP) AlwaysActive() bool { return false }

// MaxIterations implements core.Program.
func (s *SSSP) MaxIterations() int {
	if s.MaxIters > 0 {
		return s.MaxIters
	}
	return 1000
}

// HasAux implements core.Program.
func (s *SSSP) HasAux() bool { return false }

// Init implements core.Program.
func (s *SSSP) Init(n int, values, aux []float64, active *bitset.ActiveSet) {
	inf := math.Inf(1)
	for v := range values {
		values[v] = inf
	}
	if int(s.Source) < n {
		values[s.Source] = 0
		active.Activate(int(s.Source))
	}
}

// Identity implements core.Program.
func (s *SSSP) Identity() float64 { return math.Inf(1) }

// Gather implements core.Program.
func (s *SSSP) Gather(srcVal float64, e graph.Edge, srcOutDeg uint32) float64 {
	return srcVal + float64(e.Weight)
}

// Merge implements core.Program.
func (s *SSSP) Merge(a, b float64) float64 { return math.Min(a, b) }

// Apply implements core.Program.
func (s *SSSP) Apply(v graph.VertexID, old, merged float64, aux []float64, n int) (float64, bool) {
	if merged < old {
		return merged, true
	}
	return old, false
}

// Output implements core.Program.
func (s *SSSP) Output(v graph.VertexID, val float64, aux []float64) float64 { return val }

// BFS computes hop distance from a source vertex; it is SSSP with unit
// weights and works on unweighted layouts.
type BFS struct {
	// Source is the root vertex.
	Source graph.VertexID
	// MaxIters caps the traversal depth (default 1000).
	MaxIters int
}

var _ core.Program = (*BFS)(nil)

// Name implements core.Program.
func (b *BFS) Name() string { return "bfs" }

// Weighted implements core.Program.
func (b *BFS) Weighted() bool { return false }

// AlwaysActive implements core.Program.
func (b *BFS) AlwaysActive() bool { return false }

// MaxIterations implements core.Program.
func (b *BFS) MaxIterations() int {
	if b.MaxIters > 0 {
		return b.MaxIters
	}
	return 1000
}

// HasAux implements core.Program.
func (b *BFS) HasAux() bool { return false }

// Init implements core.Program.
func (b *BFS) Init(n int, values, aux []float64, active *bitset.ActiveSet) {
	inf := math.Inf(1)
	for v := range values {
		values[v] = inf
	}
	if int(b.Source) < n {
		values[b.Source] = 0
		active.Activate(int(b.Source))
	}
}

// Identity implements core.Program.
func (b *BFS) Identity() float64 { return math.Inf(1) }

// Gather implements core.Program.
func (b *BFS) Gather(srcVal float64, e graph.Edge, srcOutDeg uint32) float64 { return srcVal + 1 }

// Merge implements core.Program.
func (b *BFS) Merge(x, y float64) float64 { return math.Min(x, y) }

// Apply implements core.Program.
func (b *BFS) Apply(v graph.VertexID, old, merged float64, aux []float64, n int) (float64, bool) {
	if merged < old {
		return merged, true
	}
	return old, false
}

// Output implements core.Program.
func (b *BFS) Output(v graph.VertexID, val float64, aux []float64) float64 { return val }

// ByName constructs a program by its CLI name. src seeds the source vertex
// of traversal algorithms.
func ByName(name string, src graph.VertexID) (core.Program, error) {
	switch name {
	case "pr", "pagerank":
		return &PageRank{}, nil
	case "prd", "pr-d", "pagerank-delta":
		return &PageRankDelta{}, nil
	case "cc", "components":
		return &ConnectedComponents{}, nil
	case "sssp":
		return &SSSP{Source: src}, nil
	case "bfs":
		return &BFS{Source: src}, nil
	case "widestpath", "wp":
		return &WidestPath{Source: src}, nil
	case "reach", "reachability":
		return &Reachability{Source: src}, nil
	default:
		return nil, fmt.Errorf("algorithms: unknown algorithm %q (have pr, prd, cc, sssp, bfs, widestpath, reach)", name)
	}
}
