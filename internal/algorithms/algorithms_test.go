package algorithms

import (
	"math"
	"testing"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
)

func TestPageRankDefaults(t *testing.T) {
	p := &PageRank{}
	if p.MaxIterations() != 5 {
		t.Fatalf("default iterations = %d, want 5 (paper)", p.MaxIterations())
	}
	if !p.AlwaysActive() || p.Weighted() || p.HasAux() {
		t.Fatal("PR flags wrong")
	}
	if (&PageRank{Iterations: 7}).MaxIterations() != 7 {
		t.Fatal("Iterations override ignored")
	}
}

func TestPageRankGatherZeroDegree(t *testing.T) {
	p := &PageRank{}
	if got := p.Gather(0.5, graph.Edge{}, 0); got != 0 {
		t.Fatalf("gather from zero-degree source = %v", got)
	}
	if got := p.Gather(0.6, graph.Edge{}, 3); math.Abs(got-0.2) > 1e-15 {
		t.Fatalf("gather = %v, want 0.2", got)
	}
}

func TestPageRankOnCycle(t *testing.T) {
	// On a directed cycle every vertex keeps rank 1/n forever.
	n := 8
	g := &graph.Graph{NumVertices: n}
	for v := 0; v < n; v++ {
		g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID((v + 1) % n)})
	}
	out, _ := core.RunReference(g, &PageRank{Iterations: 10}, 0)
	for v := 0; v < n; v++ {
		if math.Abs(out[v]-1.0/float64(n)) > 1e-12 {
			t.Fatalf("cycle rank(%d) = %v, want %v", v, out[v], 1.0/float64(n))
		}
	}
}

func TestPageRankStarConcentratesRank(t *testing.T) {
	// hub -> leaves: after one iteration the hub holds only the base rank,
	// leaves hold base + d*(hubshare).
	g := gen.Star(11) // hub 0, 10 leaves
	out, _ := core.RunReference(g, &PageRank{Iterations: 5}, 0)
	for v := 1; v < 11; v++ {
		if out[v] <= out[0] {
			t.Fatalf("leaf %d rank %v not above hub %v", v, out[v], out[0])
		}
	}
}

func TestPageRankDeltaConvergesToPageRank(t *testing.T) {
	// Run PR long enough to converge and PR-D to convergence; the ranks
	// must agree. Use a graph with no sinks so mass is conserved.
	n := 16
	g := &graph.Graph{NumVertices: n}
	for v := 0; v < n; v++ {
		g.Edges = append(g.Edges,
			graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID((v + 1) % n)},
			graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID((v + 5) % n)},
			graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID((v * 3) % n)})
	}
	pr, _ := core.RunReference(g, &PageRank{Iterations: 100}, 0)
	prd, iters := core.RunReference(g, &PageRankDelta{Iterations: 200, Tolerance: 1e-14}, 0)
	if iters >= 200 {
		t.Fatalf("PR-D did not converge in %d iterations", iters)
	}
	for v := 0; v < n; v++ {
		if math.Abs(pr[v]-prd[v]) > 1e-6 {
			t.Fatalf("vertex %d: PR %v vs PR-D %v", v, pr[v], prd[v])
		}
	}
}

func TestPageRankDeltaActiveSetShrinks(t *testing.T) {
	// The property GraphSD exploits: PR-D deactivates vertices once their
	// deltas drop below tolerance. On a chain deltas shrink by the damping
	// factor per hop, so with tolerance 1e-3 the frontier dies after
	// ~ln(tol/base)/ln(d) ≈ 7 hops, far before the chain's end.
	g := gen.Chain(50)
	prog := &PageRankDelta{Iterations: 100, Tolerance: 1e-3}
	_, iters := core.RunReference(g, prog, 0)
	if iters > 15 {
		t.Fatalf("PR-D frontier did not die early on a chain (%d iters)", iters)
	}
}

func TestCCLabelsAreComponentMinima(t *testing.T) {
	g, err := gen.Clustered(4, 10, 40, 0, 7) // 4 disjoint clusters
	if err != nil {
		t.Fatal(err)
	}
	// Symmetrize so label propagation reaches every cluster member.
	for _, e := range append([]graph.Edge(nil), g.Edges...) {
		g.Edges = append(g.Edges, graph.Edge{Src: e.Dst, Dst: e.Src})
	}
	out, _ := core.RunReference(g, &ConnectedComponents{}, 0)
	// Labels must be stable under one more propagation and constant within
	// reachable groups; check labels are at most the vertex id and belong
	// to the same cluster's ID range.
	for v := 0; v < g.NumVertices; v++ {
		if out[v] > float64(v) {
			t.Fatalf("label(%d) = %v exceeds own id", v, out[v])
		}
		if int(out[v])/10 != v/10 {
			t.Fatalf("label(%d) = %v crossed cluster boundary", v, out[v])
		}
	}
}

func TestSSSPAgainstDijkstra(t *testing.T) {
	g, err := gen.ErdosRenyi(60, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	gen.Weighted(g, 10, 12)
	out, _ := core.RunReference(g, &SSSP{Source: 0}, 0)
	want := dijkstra(g, 0)
	for v := 0; v < g.NumVertices; v++ {
		if math.IsInf(want[v], 1) != math.IsInf(out[v], 1) {
			t.Fatalf("vertex %d reachability mismatch: %v vs %v", v, out[v], want[v])
		}
		if !math.IsInf(want[v], 1) && math.Abs(out[v]-want[v]) > 1e-9 {
			t.Fatalf("dist(%d) = %v, dijkstra %v", v, out[v], want[v])
		}
	}
}

// dijkstra is a plain O(V^2) reference shortest-path for tests.
func dijkstra(g *graph.Graph, src graph.VertexID) []float64 {
	n := g.NumVertices
	dist := make([]float64, n)
	done := make([]bool, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[src] = 0
	csr := graph.BuildCSR(g)
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		nb := csr.Neighbors(graph.VertexID(u))
		ws := csr.Weights(graph.VertexID(u))
		for k, d := range nb {
			alt := dist[u] + float64(ws[k])
			if alt < dist[d] {
				dist[d] = alt
			}
		}
	}
}

func TestBFSEqualsSSSPUnitWeights(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 200, 21)
	if err != nil {
		t.Fatal(err)
	}
	bfs, _ := core.RunReference(g, &BFS{Source: 3}, 0)
	unit := g.Clone()
	for i := range unit.Edges {
		unit.Edges[i].Weight = 1
	}
	unit.Weighted = true
	sssp, _ := core.RunReference(unit, &SSSP{Source: 3}, 0)
	for v := range bfs {
		if math.IsInf(bfs[v], 1) != math.IsInf(sssp[v], 1) {
			t.Fatalf("vertex %d: bfs %v vs unit-sssp %v", v, bfs[v], sssp[v])
		}
		if !math.IsInf(bfs[v], 1) && bfs[v] != sssp[v] {
			t.Fatalf("vertex %d: bfs %v vs unit-sssp %v", v, bfs[v], sssp[v])
		}
	}
}

func TestSSSPSourceOutOfRange(t *testing.T) {
	g := gen.Chain(5)
	gen.Weighted(g, 2, 1)
	out, iters := core.RunReference(g, &SSSP{Source: 99}, 0)
	if iters != 0 {
		t.Fatalf("out-of-range source ran %d iterations", iters)
	}
	for _, d := range out {
		if !math.IsInf(d, 1) {
			t.Fatal("out-of-range source reached vertices")
		}
	}
}

func TestInitStates(t *testing.T) {
	n := 10
	for _, tc := range []struct {
		prog       core.Program
		wantActive int
	}{
		{&PageRank{}, n},
		{&PageRankDelta{}, n},
		{&ConnectedComponents{}, n},
		{&SSSP{Source: 2}, 1},
		{&BFS{Source: 2}, 1},
	} {
		values := make([]float64, n)
		var aux []float64
		if tc.prog.HasAux() {
			aux = make([]float64, n)
		}
		active := bitset.NewActiveSet(n)
		tc.prog.Init(n, values, aux, active)
		if active.Count() != tc.wantActive {
			t.Errorf("%s: %d initially active, want %d", tc.prog.Name(), active.Count(), tc.wantActive)
		}
	}
}

func TestMergeProperties(t *testing.T) {
	// Merge must be commutative and associative with the right identity.
	progs := []core.Program{&PageRank{}, &PageRankDelta{}, &ConnectedComponents{}, &SSSP{}, &BFS{}}
	vals := []float64{0, 1, 2.5, -1, math.Inf(1), 0.125}
	for _, p := range progs {
		id := p.Identity()
		for _, a := range vals {
			if got := p.Merge(a, id); got != a && !(math.IsInf(a, 1) && math.IsInf(got, 1)) {
				t.Errorf("%s: Merge(%v, identity) = %v", p.Name(), a, got)
			}
			for _, b := range vals {
				if p.Merge(a, b) != p.Merge(b, a) {
					t.Errorf("%s: Merge not commutative on (%v,%v)", p.Name(), a, b)
				}
				for _, c := range vals {
					l := p.Merge(p.Merge(a, b), c)
					r := p.Merge(a, p.Merge(b, c))
					if l != r && !(math.IsInf(l, 1) && math.IsInf(r, 1)) {
						t.Errorf("%s: Merge not associative on (%v,%v,%v)", p.Name(), a, b, c)
					}
				}
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"pr", "pagerank", "prd", "pr-d", "pagerank-delta", "cc", "components", "sssp", "bfs"} {
		if _, err := ByName(name, 0); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("pagerankk", 0); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	p, _ := ByName("sssp", 42)
	if p.(*SSSP).Source != 42 {
		t.Fatal("source not threaded through ByName")
	}
}
