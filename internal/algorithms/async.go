// Asynchronous (label-correcting / residual) forms of the monotonic
// programs. Under core's async engine a vertex value is live — there is no
// previous-iteration snapshot — so each program states how to fold a
// contribution into the live value (AsyncApply), how to settle a source
// after its value was scattered (AsyncConsume), and how much pending work a
// vertex still carries (Residual, the scheduler's priority signal).
//
// The min-programs (CC, SSSP, BFS, and the extra traversals) are classic
// label correcting: the live label only ever improves, a scattered source
// goes back to sleep unless its label improved mid-scatter, and each active
// vertex counts one unit of residual. PageRank-Delta is a residual
// formulation: the value is the un-propagated rank mass, the aux array is
// the rank; contributions bank into the rank immediately (exactly like the
// BSP Apply) and a consume subtracts the scattered snapshot from the
// pending mass.
package algorithms

import (
	"math"

	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
)

var (
	_ core.Monotonic = (*PageRankDelta)(nil)
	_ core.Monotonic = (*ConnectedComponents)(nil)
	_ core.Monotonic = (*SSSP)(nil)
	_ core.Monotonic = (*BFS)(nil)
)

// Residual implements core.Monotonic: the pending mass is the un-propagated
// delta itself.
func (p *PageRankDelta) Residual(v graph.VertexID, val float64, aux []float64) float64 {
	return math.Abs(val)
}

// AsyncApply implements core.Monotonic: the damped contribution banks into
// the rank immediately (matching the BSP Apply) and joins the pending mass;
// the vertex is active while its accumulated pending mass exceeds the
// tolerance.
func (p *PageRankDelta) AsyncApply(v graph.VertexID, cur, merged float64, aux []float64, n int) (float64, bool) {
	delta := Damping * merged
	if delta == 0 {
		return cur, false
	}
	aux[v] += delta
	nv := cur + delta
	return nv, math.Abs(nv) > p.tolerance()
}

// AsyncConsume implements core.Monotonic: the scattered snapshot has been
// pushed to every out-neighbor, so only mass that arrived mid-scatter
// remains pending. Sub-tolerance remainders are parked (the vertex
// deactivates without propagating them), mirroring the BSP variant's
// discard of sub-tolerance deltas.
func (p *PageRankDelta) AsyncConsume(v graph.VertexID, snapshot, cur float64, aux []float64, n int) (float64, bool) {
	nv := cur - snapshot
	return nv, math.Abs(nv) > p.tolerance()
}

// minResidual, minAsyncApply, and minAsyncConsume are the shared
// label-correcting forms: one unit of pending work per active vertex, fold
// by min, sleep after a scatter unless the label improved underneath it.
func minResidual() float64 { return 1 }

func minAsyncApply(cur, merged float64) (float64, bool) {
	if merged < cur {
		return merged, true
	}
	return cur, false
}

func minAsyncConsume(snapshot, cur float64) (float64, bool) {
	return cur, cur < snapshot
}

// Residual implements core.Monotonic.
func (c *ConnectedComponents) Residual(v graph.VertexID, val float64, aux []float64) float64 {
	return minResidual()
}

// AsyncApply implements core.Monotonic.
func (c *ConnectedComponents) AsyncApply(v graph.VertexID, cur, merged float64, aux []float64, n int) (float64, bool) {
	return minAsyncApply(cur, merged)
}

// AsyncConsume implements core.Monotonic.
func (c *ConnectedComponents) AsyncConsume(v graph.VertexID, snapshot, cur float64, aux []float64, n int) (float64, bool) {
	return minAsyncConsume(snapshot, cur)
}

// Residual implements core.Monotonic.
func (s *SSSP) Residual(v graph.VertexID, val float64, aux []float64) float64 {
	return minResidual()
}

// AsyncApply implements core.Monotonic.
func (s *SSSP) AsyncApply(v graph.VertexID, cur, merged float64, aux []float64, n int) (float64, bool) {
	return minAsyncApply(cur, merged)
}

// AsyncConsume implements core.Monotonic.
func (s *SSSP) AsyncConsume(v graph.VertexID, snapshot, cur float64, aux []float64, n int) (float64, bool) {
	return minAsyncConsume(snapshot, cur)
}

// Residual implements core.Monotonic.
func (b *BFS) Residual(v graph.VertexID, val float64, aux []float64) float64 {
	return minResidual()
}

// AsyncApply implements core.Monotonic.
func (b *BFS) AsyncApply(v graph.VertexID, cur, merged float64, aux []float64, n int) (float64, bool) {
	return minAsyncApply(cur, merged)
}

// AsyncConsume implements core.Monotonic.
func (b *BFS) AsyncConsume(v graph.VertexID, snapshot, cur float64, aux []float64, n int) (float64, bool) {
	return minAsyncConsume(snapshot, cur)
}
