package baseline

import (
	"fmt"
	"time"

	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// RunLumos executes prog over a Lumos layout (partition.BuildLumos).
//
// Lumos performs dependency-driven out-of-order execution: one physical
// pass over the grid computes iteration t for every vertex and
// proactively propagates iteration t+1 values along every edge whose
// source interval is updated before its destination interval (the upper
// triangle plus the diagonal of the grid). The following pass therefore
// reads only the remaining lower-triangle cells. Unlike GraphSD, Lumos
// is not state-aware: it streams every cell of the due triangle every
// pass, regardless of how few vertices are active, and it does not buffer
// the twice-read cells — which is exactly the I/O gap Figures 5 and 7
// measure.
func RunLumos(layout *partition.Layout, prog core.Program, opts Options) (*core.Result, error) {
	if layout.Meta.System != "lumos" {
		return nil, fmt.Errorf("baseline: layout built for %q, want lumos (use partition.BuildLumos)", layout.Meta.System)
	}
	if prog.Weighted() && !layout.Meta.Weighted {
		return nil, fmt.Errorf("baseline: program %s needs weights but layout is unweighted", prog.Name())
	}
	start := time.Now()
	dev := layout.Dev
	dev.ResetStats()

	degrees, err := layout.LoadDegrees()
	if err != nil {
		return nil, err
	}
	s := newBSPState(layout.Meta.NumVertices, prog, degrees)
	maxIter := s.maxIterations(opts)
	p := layout.Meta.P

	chargeValues := func() {
		dev.Charge(storage.SeqRead, int64(s.n)*graph.VertexValueBytes)
	}
	chargeValuesBack := func() {
		dev.Charge(storage.SeqWrite, int64(s.n)*graph.VertexValueBytes)
	}

	// Off-diagonal cells decode into one reused buffer pair. The diagonal
	// gets its own pair because its edges stay live past the inner loop
	// (scattered again after applyRange) while off-diagonal loads keep
	// reusing the shared buffer.
	var edges, diag []graph.Edge
	var buf, diagBuf []byte

	iter := 0
	secondaryPending := false
	for iter < maxIter {
		if !secondaryPending && s.active.Empty() && s.touchedNext.Empty() {
			break
		}
		s.promoteStaged()

		if secondaryPending {
			// Second half: only the lower-triangle cells remain.
			chargeValues()
			for j := 0; j < p; j++ {
				for i := j + 1; i < p; i++ {
					edges, buf, err = layout.LoadSubBlockInto(i, j, edges, buf)
					if err != nil {
						return nil, err
					}
					s.scatter(edges, s.valPrev, s.active, s.acc, s.touched)
				}
				lo, hi := layout.Meta.Interval(j)
				s.applyRange(lo, hi)
			}
			chargeValuesBack()
			secondaryPending = false
		} else if iter+1 < maxIter {
			// Full out-of-order pass: iteration t plus staged t+1 values.
			chargeValues()
			for j := 0; j < p; j++ {
				var diagEdges []graph.Edge
				for i := 0; i < p; i++ {
					cell := &edges
					cbuf := &buf
					if i == j {
						cell, cbuf = &diag, &diagBuf
					}
					*cell, *cbuf, err = layout.LoadSubBlockInto(i, j, *cell, *cbuf)
					if err != nil {
						return nil, err
					}
					if len(*cell) == 0 {
						continue
					}
					s.scatter(*cell, s.valPrev, s.active, s.acc, s.touched)
					switch {
					case i < j:
						s.scatter(*cell, s.valCur, s.newActive, s.accNext, s.touchedNext)
					case i == j:
						diagEdges = *cell
					}
				}
				lo, hi := layout.Meta.Interval(j)
				s.applyRange(lo, hi)
				if diagEdges != nil {
					s.scatter(diagEdges, s.valCur, s.newActive, s.accNext, s.touchedNext)
				}
			}
			chargeValuesBack()
			secondaryPending = !s.newActive.Empty() || !s.touchedNext.Empty()
		} else {
			// Single iteration left in the budget: plain full pass.
			chargeValues()
			for j := 0; j < p; j++ {
				for i := 0; i < p; i++ {
					edges, buf, err = layout.LoadSubBlockInto(i, j, edges, buf)
					if err != nil {
						return nil, err
					}
					s.scatter(edges, s.valPrev, s.active, s.acc, s.touched)
				}
				lo, hi := layout.Meta.Interval(j)
				s.applyRange(lo, hi)
			}
			chargeValuesBack()
		}

		s.advance()
		iter++
	}

	return &core.Result{
		Algorithm:   prog.Name(),
		Iterations:  iter,
		Converged:   s.active.Empty() && s.touchedNext.Empty() && !secondaryPending,
		Outputs:     s.outputs(),
		WallTime:    time.Since(start),
		ComputeTime: s.computeTime,
		IO:          dev.Stats(),
	}, nil
}
