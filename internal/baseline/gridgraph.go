package baseline

import (
	"fmt"
	"time"

	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// RunGridGraph executes prog with a plain 2-level streaming strategy over
// a Lumos-format grid layout (unsorted cells, no indexes): every iteration
// streams every cell in destination-major order, with neither active-vertex
// awareness nor cross-iteration computation. It is the floor baseline of
// Table 1's taxonomy ("eliminating random accesses" only).
func RunGridGraph(layout *partition.Layout, prog core.Program, opts Options) (*core.Result, error) {
	if layout.Meta.System != "lumos" && layout.Meta.System != "graphsd" {
		return nil, fmt.Errorf("baseline: gridgraph needs a grid layout, got %q", layout.Meta.System)
	}
	if prog.Weighted() && !layout.Meta.Weighted {
		return nil, fmt.Errorf("baseline: program %s needs weights but layout is unweighted", prog.Name())
	}
	start := time.Now()
	dev := layout.Dev
	dev.ResetStats()

	degrees, err := layout.LoadDegrees()
	if err != nil {
		return nil, err
	}
	s := newBSPState(layout.Meta.NumVertices, prog, degrees)
	maxIter := s.maxIterations(opts)
	p := layout.Meta.P

	// One reused decode buffer pair across all cells and iterations.
	var edges []graph.Edge
	var buf []byte

	iter := 0
	for ; iter < maxIter; iter++ {
		if s.active.Empty() {
			break
		}
		dev.Charge(storage.SeqRead, int64(s.n)*graph.VertexValueBytes)
		for j := 0; j < p; j++ {
			for i := 0; i < p; i++ {
				edges, buf, err = layout.LoadSubBlockInto(i, j, edges, buf)
				if err != nil {
					return nil, err
				}
				s.scatter(edges, s.valPrev, s.active, s.acc, s.touched)
			}
			lo, hi := layout.Meta.Interval(j)
			s.applyRange(lo, hi)
		}
		dev.Charge(storage.SeqWrite, int64(s.n)*graph.VertexValueBytes)
		s.advance()
	}

	return &core.Result{
		Algorithm:   prog.Name(),
		Iterations:  iter,
		Converged:   s.active.Empty(),
		Outputs:     s.outputs(),
		WallTime:    time.Since(start),
		ComputeTime: s.computeTime,
		IO:          dev.Stats(),
	}, nil
}
