package baseline

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// updateRecordBytes is the on-disk size of one X-Stream update: a 4-byte
// destination plus an 8-byte contribution value.
const updateRecordBytes = 12

// BuildXStream writes the X-Stream layout: the raw, unsorted edge list as
// a single streamable file (X-Stream's whole premise is that sorting is
// never worth it), plus the degree table. Preprocessing is therefore even
// cheaper than Lumos's — one sequential copy.
func BuildXStream(dev *storage.Device, g *graph.Graph, p int) (*partition.Layout, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("baseline: xstream needs positive partition count, got %d", p)
	}
	dev.Charge(storage.SeqRead, g.Bytes()) // raw input scan

	m := &partition.Manifest{
		FormatVersion: partition.FormatVersion,
		System:        "xstream",
		NumVertices:   g.NumVertices,
		NumEdges:      int64(len(g.Edges)),
		P:             p,
		Weighted:      g.Weighted,
		EdgeCounts:    make([][]int64, p),
	}
	for i := range m.EdgeCounts {
		m.EdgeCounts[i] = make([]int64, p)
	}
	if p > 0 {
		m.EdgeCounts[0][0] = int64(len(g.Edges))
	}

	rec := m.EdgeRecordBytes()
	buf := make([]byte, 0, len(g.Edges)*rec)
	for _, e := range g.Edges {
		buf = graph.EncodeEdge(buf, e, g.Weighted)
	}
	if err := dev.WriteFile(xstreamEdgesName, buf); err != nil {
		return nil, err
	}

	deg := g.OutDegrees()
	dbuf := make([]byte, 0, len(deg)*4)
	for _, d := range deg {
		dbuf = binary.LittleEndian.AppendUint32(dbuf, d)
	}
	if err := dev.WriteFile(partition.DegreesName, dbuf); err != nil {
		return nil, err
	}

	data, err := manifestJSON(m)
	if err != nil {
		return nil, err
	}
	if err := dev.WriteFile(partition.ManifestName, data); err != nil {
		return nil, err
	}
	return &partition.Layout{Dev: dev, Meta: *m}, nil
}

const xstreamEdgesName = "edges.bin"

func manifestJSON(m *partition.Manifest) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

func updatesName(j int) string { return fmt.Sprintf("updates/u_%04d.bin", j) }

// RunXStream executes prog with X-Stream's edge-centric scatter-gather
// (Roy et al., SOSP '13): every iteration streams the entire unsorted edge
// list, writes an *update stream* — one (destination, contribution) record
// per active edge — partitioned by destination interval, then streams each
// partition's updates back to apply them. The defining I/O signature is
// the intermediate update traffic: |E_active| records are written AND
// re-read every iteration on top of the full |E| edge scan, which is why
// systems with 2-level layouts (GridGraph and everything after) beat it.
func RunXStream(layout *partition.Layout, prog core.Program, opts Options) (*core.Result, error) {
	if layout.Meta.System != "xstream" {
		return nil, fmt.Errorf("baseline: layout built for %q, want xstream (use BuildXStream)", layout.Meta.System)
	}
	if prog.Weighted() && !layout.Meta.Weighted {
		return nil, fmt.Errorf("baseline: program %s needs weights but layout is unweighted", prog.Name())
	}
	start := time.Now()
	dev := layout.Dev
	dev.ResetStats()

	degrees, err := layout.LoadDegrees()
	if err != nil {
		return nil, err
	}
	s := newBSPState(layout.Meta.NumVertices, prog, degrees)
	maxIter := s.maxIterations(opts)
	p := layout.Meta.P

	iter := 0
	for ; iter < maxIter; iter++ {
		if s.active.Empty() {
			break
		}
		dev.Charge(storage.SeqRead, int64(s.n)*graph.VertexValueBytes)

		// Scatter phase: stream all edges, emit updates binned by
		// destination interval.
		edgeData, err := dev.ReadFile(xstreamEdgesName)
		if err != nil {
			return nil, err
		}
		edges, err := graph.DecodeEdges(edgeData, layout.Meta.Weighted)
		if err != nil {
			return nil, err
		}
		bins := make([][]byte, p)
		t0 := time.Now()
		for _, e := range edges {
			if !s.active.Contains(int(e.Src)) {
				continue
			}
			g := s.prog.Gather(s.valPrev[e.Src], e, s.degrees[e.Src])
			j := layout.Meta.IntervalOf(e.Dst)
			bins[j] = binary.LittleEndian.AppendUint32(bins[j], uint32(e.Dst))
			bins[j] = binary.LittleEndian.AppendUint64(bins[j], math.Float64bits(g))
		}
		s.computeTime += time.Since(t0)
		for j := 0; j < p; j++ {
			if err := dev.WriteFile(updatesName(j), bins[j]); err != nil {
				return nil, err
			}
		}

		// Gather phase: stream each interval's updates back and apply.
		for j := 0; j < p; j++ {
			data, err := dev.ReadFile(updatesName(j))
			if err != nil {
				return nil, err
			}
			if len(data)%updateRecordBytes != 0 {
				return nil, fmt.Errorf("baseline: xstream update stream %d corrupt (%d bytes)", j, len(data))
			}
			t0 := time.Now()
			for off := 0; off < len(data); off += updateRecordBytes {
				dst := binary.LittleEndian.Uint32(data[off:])
				val := math.Float64frombits(binary.LittleEndian.Uint64(data[off+4:]))
				s.acc[dst] = s.prog.Merge(s.acc[dst], val)
				s.touched.Activate(int(dst))
			}
			s.computeTime += time.Since(t0)
			lo, hi := layout.Meta.Interval(j)
			s.applyRange(lo, hi)
		}

		dev.Charge(storage.SeqWrite, int64(s.n)*graph.VertexValueBytes)
		s.advance()
	}

	return &core.Result{
		Algorithm:   prog.Name(),
		Iterations:  iter,
		Converged:   s.active.Empty(),
		Outputs:     s.outputs(),
		WallTime:    time.Since(start),
		ComputeTime: s.computeTime,
		IO:          dev.Stats(),
	}, nil
}
