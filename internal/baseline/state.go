// Package baseline implements the comparison systems of the paper's
// evaluation as engines over the same vertex-program interface as GraphSD:
//
//   - HUS-Graph (Xu et al., TPDS '20): a hybrid update strategy that
//     adaptively switches between on-demand and full I/O based on the
//     active-vertex count, but performs no cross-iteration computation.
//   - Lumos (Vora, ATC '19): dependency-driven out-of-order execution that
//     propagates future-iteration values in the same pass, but always
//     streams the whole graph (no active-vertex awareness, no buffering).
//   - GridGraph (Zhu et al., ATC '15): plain 2-level streaming with
//     neither optimization, as a floor baseline.
//   - X-Stream (Roy et al., SOSP '13): edge-centric scatter-gather over
//     the raw unsorted edge list with intermediate update streams, the
//     generation before 2-level layouts.
//
// Neither HUS-Graph nor Lumos is open source; these engines implement the
// published behaviour as summarized in the GraphSD paper (Table 1, §5.1)
// over this repository's storage substrate, so that all systems differ
// only in their I/O strategy (see DESIGN.md §2). All engines are
// BSP-equivalent: they compute exactly what core.RunReference computes.
package baseline

import (
	"time"

	"github.com/graphsd/graphsd/internal/bitset"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
)

// Options configures a baseline run.
type Options struct {
	// MaxIterations overrides the program's bound when positive.
	MaxIterations int
}

// bspState is the shared synchronous-iteration machinery of the baseline
// engines: double-buffered vertex values, merge accumulators, active sets,
// and (for Lumos) the staged next-iteration accumulators.
type bspState struct {
	n       int
	prog    core.Program
	degrees []uint32

	valPrev, valCur []float64
	aux             []float64
	acc, accNext    []float64
	touched         *bitset.ActiveSet
	touchedNext     *bitset.ActiveSet
	active          *bitset.ActiveSet
	newActive       *bitset.ActiveSet

	computeTime time.Duration
}

func newBSPState(n int, prog core.Program, degrees []uint32) *bspState {
	s := &bspState{
		n:           n,
		prog:        prog,
		degrees:     degrees,
		valPrev:     make([]float64, n),
		valCur:      make([]float64, n),
		acc:         make([]float64, n),
		accNext:     make([]float64, n),
		touched:     bitset.NewActiveSet(n),
		touchedNext: bitset.NewActiveSet(n),
		active:      bitset.NewActiveSet(n),
		newActive:   bitset.NewActiveSet(n),
	}
	if prog.HasAux() {
		s.aux = make([]float64, n)
	}
	id := prog.Identity()
	for v := 0; v < n; v++ {
		s.acc[v] = id
		s.accNext[v] = id
	}
	prog.Init(n, s.valPrev, s.aux, s.active)
	copy(s.valCur, s.valPrev)
	return s
}

// scatter merges contributions of edges with sources in filter, reading
// source values from vals, into the given accumulator and touched set.
func (s *bspState) scatter(edges []graph.Edge, vals []float64, filter *bitset.ActiveSet, acc []float64, touched *bitset.ActiveSet) {
	t0 := time.Now()
	for _, e := range edges {
		if !filter.Contains(int(e.Src)) {
			continue
		}
		g := s.prog.Gather(vals[e.Src], e, s.degrees[e.Src])
		acc[e.Dst] = s.prog.Merge(acc[e.Dst], g)
		touched.Activate(int(e.Dst))
	}
	s.computeTime += time.Since(t0)
}

// applyRange applies every touched vertex in [lo, hi) (every vertex when
// the program is always-active), resetting consumed accumulators.
func (s *bspState) applyRange(lo, hi int) {
	t0 := time.Now()
	id := s.prog.Identity()
	applyOne := func(v int) {
		nv, act := s.prog.Apply(graph.VertexID(v), s.valPrev[v], s.acc[v], s.aux, s.n)
		s.valCur[v] = nv
		if act {
			s.newActive.Activate(v)
		}
		s.acc[v] = id
		s.touched.Deactivate(v)
	}
	if s.prog.AlwaysActive() {
		for v := lo; v < hi; v++ {
			applyOne(v)
		}
	} else {
		var pending []int
		s.touched.ForEachRange(lo, hi, func(v int) bool {
			pending = append(pending, v)
			return true
		})
		for _, v := range pending {
			applyOne(v)
		}
	}
	s.computeTime += time.Since(t0)
}

func (s *bspState) applyAll() { s.applyRange(0, s.n) }

// promoteStaged swaps the staged next-iteration accumulators into the
// current slots (the outgoing ones are identity-clean after apply).
func (s *bspState) promoteStaged() {
	s.acc, s.accNext = s.accNext, s.acc
	s.touched, s.touchedNext = s.touchedNext, s.touched
}

// advance moves to the next iteration: the activation set becomes current
// and values roll forward.
func (s *bspState) advance() {
	s.active.CopyFrom(s.newActive)
	s.newActive.Reset()
	s.valPrev, s.valCur = s.valCur, s.valPrev
	copy(s.valCur, s.valPrev)
}

// outputs materializes the program outputs, charging apply time.
func (s *bspState) outputs() []float64 {
	t0 := time.Now()
	out := make([]float64, s.n)
	for v := range out {
		out[v] = s.prog.Output(graph.VertexID(v), s.valPrev[v], s.aux)
	}
	s.computeTime += time.Since(t0)
	return out
}

func (s *bspState) maxIterations(opts Options) int {
	if opts.MaxIterations > 0 {
		return opts.MaxIterations
	}
	return s.prog.MaxIterations()
}
