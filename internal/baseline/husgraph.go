package baseline

import (
	"fmt"
	"time"

	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/iosched"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// RunHUSGraph executes prog over a HUS-Graph layout (partition.BuildHUSGraph).
//
// HUS-Graph's hybrid update strategy keeps two sorted copies of the edges:
// source-major row blocks with per-vertex indexes for the on-demand path,
// and destination-major column blocks for the streaming path. Each
// iteration it evaluates the same I/O cost model as GraphSD and picks the
// cheaper access path — but it never computes future-iteration values, so
// every iteration pays its own full I/O (the gap Figure 5/7 measures).
func RunHUSGraph(layout *partition.Layout, prog core.Program, opts Options) (*core.Result, error) {
	if layout.Meta.System != "husgraph" {
		return nil, fmt.Errorf("baseline: layout built for %q, want husgraph (use partition.BuildHUSGraph)", layout.Meta.System)
	}
	if prog.Weighted() && !layout.Meta.Weighted {
		return nil, fmt.Errorf("baseline: program %s needs weights but layout is unweighted", prog.Name())
	}
	start := time.Now()
	dev := layout.Dev
	dev.ResetStats()

	degrees, err := layout.LoadDegrees()
	if err != nil {
		return nil, err
	}
	// Row blocks keep each vertex's whole edge list contiguous, so an
	// active run costs a single positioning seek (P=1 in the cost model).
	sched, err := iosched.New(iosched.Config{
		Profile:         dev.Profile(),
		NumVertices:     layout.Meta.NumVertices,
		NumEdges:        layout.Meta.NumEdges,
		EdgeRecordBytes: layout.Meta.EdgeRecordBytes(),
		P:               1,
	})
	if err != nil {
		return nil, err
	}

	s := newBSPState(layout.Meta.NumVertices, prog, degrees)
	maxIter := s.maxIterations(opts)

	// Row indexes are immutable; cache them once loaded.
	rowIndex := make(map[int]*partition.Index)
	// Column streaming reuses one decode buffer pair across blocks and
	// iterations instead of allocating per LoadCol call.
	var colEdges []graph.Edge
	var colBuf []byte

	iter := 0
	for ; iter < maxIter; iter++ {
		if s.active.Empty() {
			break
		}
		dec := sched.Decide(iter, s.active, degrees)
		if dec.Model == iosched.OnDemandIO {
			if err := husOnDemand(layout, s, rowIndex); err != nil {
				return nil, err
			}
		} else {
			if colEdges, colBuf, err = husFull(layout, s, colEdges, colBuf); err != nil {
				return nil, err
			}
		}
		s.advance()
	}

	return &core.Result{
		Algorithm:         prog.Name(),
		Iterations:        iter,
		Converged:         s.active.Empty(),
		Outputs:           s.outputs(),
		WallTime:          time.Since(start),
		ComputeTime:       s.computeTime,
		IO:                dev.Stats(),
		Decisions:         append([]iosched.Decision(nil), sched.History()...),
		SchedulerOverhead: sched.TotalOverhead(),
	}, nil
}

// husOnDemand selectively loads each active vertex's contiguous edge run
// from its row block via the row index.
func husOnDemand(layout *partition.Layout, s *bspState, rowIndex map[int]*partition.Index) error {
	dev := layout.Dev
	// Modelled index consult + vertex value read/write, as in C_r.
	dev.Charge(storage.SeqRead, int64(s.n)*graph.IndexEntryBytes)
	dev.Charge(storage.SeqRead, int64(s.n)*graph.VertexValueBytes)
	defer dev.Charge(storage.SeqWrite, int64(s.n)*graph.VertexValueBytes)

	rec := int64(layout.Meta.EdgeRecordBytes())
	var readBuf []byte
	for i := 0; i < layout.Meta.P; i++ {
		lo, hi := layout.Meta.Interval(i)
		if s.active.CountRange(lo, hi) == 0 {
			continue
		}
		idx, ok := rowIndex[i]
		if !ok {
			var err error
			idx, err = layout.LoadRowIndex(i)
			if err != nil {
				return err
			}
			rowIndex[i] = idx
		}
		r, err := layout.OpenRow(i)
		if err != nil {
			return err
		}
		if r == nil {
			continue
		}
		var batch []graph.Edge
		var loopErr error
		s.active.ForEachRange(lo, hi, func(v int) bool {
			startOff, endOff := idx.Rec[v-lo], idx.Rec[v-lo+1]
			if startOff == endOff {
				return true
			}
			nBytes := (endOff - startOff) * rec
			if int64(cap(readBuf)) < nBytes {
				readBuf = make([]byte, nBytes)
			}
			buf := readBuf[:nBytes]
			if _, loopErr = r.AutoReadAt(buf, startOff*rec); loopErr != nil {
				return false
			}
			var edges []graph.Edge
			edges, loopErr = graph.DecodeEdges(buf, layout.Meta.Weighted)
			if loopErr != nil {
				return false
			}
			batch = append(batch, edges...)
			return true
		})
		closeErr := r.Close()
		if loopErr != nil {
			return fmt.Errorf("baseline: husgraph row %d: %w", i, loopErr)
		}
		if closeErr != nil {
			return closeErr
		}
		s.scatter(batch, s.valPrev, s.active, s.acc, s.touched)
	}
	s.applyAll()
	return nil
}

// husFull streams the destination-major column blocks, applying each
// interval as soon as its column has been consumed. The decode buffers are
// threaded through and returned so callers reuse them across iterations.
func husFull(layout *partition.Layout, s *bspState, edges []graph.Edge, buf []byte) ([]graph.Edge, []byte, error) {
	dev := layout.Dev
	dev.Charge(storage.SeqRead, int64(s.n)*graph.VertexValueBytes)
	defer dev.Charge(storage.SeqWrite, int64(s.n)*graph.VertexValueBytes)

	for j := 0; j < layout.Meta.P; j++ {
		var err error
		edges, buf, err = layout.LoadColInto(j, edges, buf)
		if err != nil {
			return edges, buf, err
		}
		s.scatter(edges, s.valPrev, s.active, s.acc, s.touched)
		lo, hi := layout.Meta.Interval(j)
		s.applyRange(lo, hi)
	}
	return edges, buf, nil
}
