package baseline_test

import (
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/baseline"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func buildXStreamLayout(t *testing.T, seed int64, p int) (*partition.Layout, *core.Result) {
	t.Helper()
	g, err := gen.RMAT(8, 8, gen.Graph500, seed)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
	if err != nil {
		t.Fatal(err)
	}
	l, err := baseline.BuildXStream(dev, g, p)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := core.RunReference(g, &algorithms.ConnectedComponents{}, 0)
	return l, &core.Result{Outputs: want}
}

func TestXStreamMatchesReference(t *testing.T) {
	for _, p := range []int{1, 4} {
		l, oracle := buildXStreamLayout(t, 41, p)
		res, err := baseline.RunXStream(l, &algorithms.ConnectedComponents{}, baseline.Options{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for v := range oracle.Outputs {
			if res.Outputs[v] != oracle.Outputs[v] {
				t.Fatalf("p=%d vertex %d: %v want %v", p, v, res.Outputs[v], oracle.Outputs[v])
			}
		}
		if !res.Converged {
			t.Fatalf("p=%d: did not converge", p)
		}
	}
}

func TestXStreamAlgorithmsMatchReference(t *testing.T) {
	g, err := gen.RMAT(8, 8, gen.Graph500, 42)
	if err != nil {
		t.Fatal(err)
	}
	for name, mk := range map[string]func() core.Program{
		"pagerank": func() core.Program { return &algorithms.PageRank{Iterations: 4} },
		"bfs":      func() core.Program { return &algorithms.BFS{Source: 0} },
		"prdelta":  func() core.Program { return &algorithms.PageRankDelta{Iterations: 10} },
	} {
		want, _ := core.RunReference(g, mk(), 0)
		dev, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
		if err != nil {
			t.Fatal(err)
		}
		l, err := baseline.BuildXStream(dev, g, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := baseline.RunXStream(l, mk(), baseline.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := range want {
			if !almostEqual(res.Outputs[v], want[v], 1e-9) {
				t.Fatalf("%s vertex %d: %v want %v", name, v, res.Outputs[v], want[v])
			}
		}
	}
}

func TestXStreamWritesUpdateStreams(t *testing.T) {
	// X-Stream's signature: per-iteration write traffic beyond the vertex
	// array, proportional to active edges. GridGraph over the same graph
	// writes only vertex values.
	g, err := gen.RMAT(9, 8, gen.Graph500, 43)
	if err != nil {
		t.Fatal(err)
	}
	devX, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
	if err != nil {
		t.Fatal(err)
	}
	lx, err := baseline.BuildXStream(devX, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	xres, err := baseline.RunXStream(lx, &algorithms.PageRank{Iterations: 4}, baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	devG, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := partition.BuildLumos(devG, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := baseline.RunGridGraph(lg, &algorithms.PageRank{Iterations: 4}, baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if xres.IO.WriteBytes() <= gres.IO.WriteBytes() {
		t.Fatalf("xstream wrote %d bytes, gridgraph %d — update streams missing",
			xres.IO.WriteBytes(), gres.IO.WriteBytes())
	}
	if xres.IO.TotalBytes() <= gres.IO.TotalBytes() {
		t.Fatalf("xstream total %d not above gridgraph %d", xres.IO.TotalBytes(), gres.IO.TotalBytes())
	}
}

func TestXStreamLayoutChecks(t *testing.T) {
	g := gen.Chain(10)
	dev, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.BuildXStream(dev, g, 0); err == nil {
		t.Error("p=0 accepted")
	}
	l, err := partition.BuildLumos(dev, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.RunXStream(l, &algorithms.PageRank{}, baseline.Options{}); err == nil {
		t.Error("lumos layout accepted by xstream engine")
	}
	devX, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
	if err != nil {
		t.Fatal(err)
	}
	lx, err := baseline.BuildXStream(devX, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.RunXStream(lx, &algorithms.SSSP{Source: 0}, baseline.Options{}); err == nil {
		t.Error("weighted program accepted on unweighted xstream layout")
	}
}
