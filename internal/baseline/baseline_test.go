package baseline_test

import (
	"math"
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/baseline"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

type builder func(dev *storage.Device, g *graph.Graph, p int, opts ...partition.BuildOption) (*partition.Layout, error)
type runner func(l *partition.Layout, prog core.Program, opts baseline.Options) (*core.Result, error)

func buildWith(t *testing.T, b builder, g *graph.Graph, p int, prof storage.Profile) *partition.Layout {
	t.Helper()
	dev, err := storage.OpenDevice(t.TempDir(), prof)
	if err != nil {
		t.Fatal(err)
	}
	l, err := b(dev, g, p)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// TestBaselinesMatchReference: all three baseline engines are BSP-exact.
func TestBaselinesMatchReference(t *testing.T) {
	rmat, err := gen.RMAT(7, 6, gen.Graph500, 13)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"chain": gen.Chain(30),
		"rmat":  rmat,
	}
	systems := map[string]struct {
		build builder
		run   runner
	}{
		"husgraph":  {partition.BuildHUSGraph, baseline.RunHUSGraph},
		"lumos":     {partition.BuildLumos, baseline.RunLumos},
		"gridgraph": {partition.BuildLumos, baseline.RunGridGraph},
	}
	progs := map[string]func() core.Program{
		"pagerank": func() core.Program { return &algorithms.PageRank{Iterations: 5} },
		"prdelta":  func() core.Program { return &algorithms.PageRankDelta{Iterations: 20} },
		"cc":       func() core.Program { return &algorithms.ConnectedComponents{} },
		"bfs":      func() core.Program { return &algorithms.BFS{Source: 0} },
	}
	for gname, g := range graphs {
		for pname, mk := range progs {
			want, _ := core.RunReference(g, mk(), 0)
			for sname, sys := range systems {
				for _, p := range []int{1, 3} {
					l := buildWith(t, sys.build, g, p, storage.HDD)
					res, err := sys.run(l, mk(), baseline.Options{})
					if err != nil {
						t.Fatalf("%s/%s/%s/p%d: %v", sname, gname, pname, p, err)
					}
					for v := range want {
						if !almostEqual(res.Outputs[v], want[v], 1e-9) {
							t.Fatalf("%s/%s/%s/p%d vertex %d: %v want %v",
								sname, gname, pname, p, v, res.Outputs[v], want[v])
						}
					}
				}
			}
		}
	}
}

func TestBaselineSSSP(t *testing.T) {
	g := gen.Weighted(gen.Chain(25), 4, 3)
	want, _ := core.RunReference(g, &algorithms.SSSP{Source: 0}, 0)
	for name, sys := range map[string]struct {
		build builder
		run   runner
	}{
		"husgraph":  {partition.BuildHUSGraph, baseline.RunHUSGraph},
		"lumos":     {partition.BuildLumos, baseline.RunLumos},
		"gridgraph": {partition.BuildLumos, baseline.RunGridGraph},
	} {
		l := buildWith(t, sys.build, g, 2, storage.HDD)
		res, err := sys.run(l, &algorithms.SSSP{Source: 0}, baseline.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := range want {
			if !almostEqual(res.Outputs[v], want[v], 1e-9) {
				t.Fatalf("%s vertex %d: %v want %v", name, v, res.Outputs[v], want[v])
			}
		}
	}
}

func TestLayoutSystemChecks(t *testing.T) {
	g := gen.Chain(10)
	gsd := buildWith(t, partition.Build, g, 2, storage.HDD)
	if _, err := baseline.RunHUSGraph(gsd, &algorithms.PageRank{}, baseline.Options{}); err == nil {
		t.Error("HUS engine accepted graphsd layout")
	}
	if _, err := baseline.RunLumos(gsd, &algorithms.PageRank{}, baseline.Options{}); err == nil {
		t.Error("Lumos engine accepted graphsd layout")
	}
	// GridGraph runs on either grid layout.
	if _, err := baseline.RunGridGraph(gsd, &algorithms.PageRank{Iterations: 2}, baseline.Options{}); err != nil {
		t.Errorf("GridGraph rejected graphsd layout: %v", err)
	}
	hus := buildWith(t, partition.BuildHUSGraph, g, 2, storage.HDD)
	if _, err := baseline.RunGridGraph(hus, &algorithms.PageRank{}, baseline.Options{}); err == nil {
		t.Error("GridGraph accepted husgraph layout")
	}
	lum := buildWith(t, partition.BuildLumos, g, 2, storage.HDD)
	if _, err := baseline.RunLumos(lum, &algorithms.SSSP{Source: 0}, baseline.Options{}); err == nil {
		t.Error("weighted program accepted on unweighted lumos layout")
	}
}

// TestSystemIOOrdering verifies the headline comparative shapes of
// Figures 5 and 7 at test scale:
//
//   - shrinking-frontier algorithms (BFS stands in for CC/SSSP/PR-D):
//     GraphSD < HUS-Graph (cross-iteration savings) and
//     GraphSD < Lumos (inactive-edge savings);
//   - Lumos reads more than HUS-Graph when frontiers are small;
//   - GridGraph reads the most.
func TestSystemIOOrdering(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.Graph500, 17)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	prof := storage.ScaledHDD
	prog := func() core.Program { return &algorithms.BFS{Source: 0} }

	gsdLayout := buildWith(t, partition.Build, g, p, prof)
	gsd, err := core.Run(gsdLayout, prog(), core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	husLayout := buildWith(t, partition.BuildHUSGraph, g, p, prof)
	hus, err := baseline.RunHUSGraph(husLayout, prog(), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lumLayout := buildWith(t, partition.BuildLumos, g, p, prof)
	lum, err := baseline.RunLumos(lumLayout, prog(), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gridLayout := buildWith(t, partition.BuildLumos, g, p, prof)
	grid, err := baseline.RunGridGraph(gridLayout, prog(), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}

	gsdB, husB, lumB, gridB := gsd.IO.ReadBytes(), hus.IO.ReadBytes(), lum.IO.ReadBytes(), grid.IO.ReadBytes()
	if gsdB >= husB {
		t.Errorf("GraphSD read %d >= HUS-Graph %d", gsdB, husB)
	}
	if gsdB >= lumB {
		t.Errorf("GraphSD read %d >= Lumos %d", gsdB, lumB)
	}
	if lumB >= gridB {
		t.Errorf("Lumos read %d >= GridGraph %d", lumB, gridB)
	}
}
