package checkpoint

import (
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
)

func sampleState() *State {
	return &State{
		Algorithm:        "pagerank",
		NumVertices:      100,
		P:                4,
		Iteration:        7,
		SecondaryPending: true,
		Values:           []float64{1.5, -2.25, math.Inf(1), 0, math.SmallestNonzeroFloat64},
		Aux:              []float64{0.25, 0.5},
		AccNext:          []float64{3, 2, 1},
		Active:           []uint64{0xdeadbeef, 0, ^uint64(0)},
		TouchedNext:      []uint64{1, 2, 3, 4},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleState()
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists false after Save")
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestNilAuxRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleState()
	want.Aux = nil
	want.SecondaryPending = false
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Aux != nil || got.SecondaryPending {
		t.Fatalf("nil aux round trip: %+v", got)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	first := sampleState()
	if err := Save(dir, first); err != nil {
		t.Fatal(err)
	}
	second := sampleState()
	second.Iteration = 9
	second.Values[0] = 42
	if err := Save(dir, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 9 || got.Values[0] != 42 {
		t.Fatalf("second save not visible: %+v", got)
	}
}

func TestLoadRejectsCorruptBody(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, sampleState()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(Path(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "crc32c") {
		t.Fatalf("corrupt body loaded: %v", err)
	}
}

func TestLoadRejectsBadMagicAndTruncation(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(Path(dir), []byte("NOTACKPT????body"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic loaded: %v", err)
	}
	if err := os.WriteFile(Path(dir), []byte("GSD"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated file loaded: %v", err)
	}
}

func TestLoadMissing(t *testing.T) {
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("Exists true for empty dir")
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("missing checkpoint loaded")
	}
	if err := Remove(dir); err != nil {
		t.Fatalf("Remove of missing checkpoint: %v", err)
	}
}

func TestRemove(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, sampleState()); err != nil {
		t.Fatal(err)
	}
	if err := Remove(dir); err != nil {
		t.Fatal(err)
	}
	if Exists(dir) {
		t.Fatal("checkpoint survives Remove")
	}
}
