// Package checkpoint persists engine execution state at iteration
// boundaries so an interrupted out-of-core run can resume instead of
// recomputing every completed iteration. The file is written crash-safely
// (write-temp + fsync + rename, then directory fsync) and carries a magic
// header plus a CRC32C of the body, so a torn or corrupted checkpoint is
// detected at load rather than resumed from.
//
// The checkpoint directory is a plain host directory, deliberately outside
// the simulated storage.Device: checkpoints are operational state of the
// run, not graph data, and they must survive exactly the faults the device
// is being used to inject.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// FileName is the checkpoint file inside the checkpoint directory.
const FileName = "checkpoint.bin"

// magic identifies a checkpoint file; the trailing digits are the format
// version.
var magic = [8]byte{'G', 'S', 'D', 'C', 'K', 'P', '0', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// State is the engine state captured at an iteration boundary: everything
// needed to re-enter the BSP loop and produce results bit-identical to an
// uninterrupted run.
type State struct {
	// Algorithm is the program name; resume refuses a mismatched program.
	Algorithm string
	// NumVertices and P pin the layout shape the state belongs to.
	NumVertices int
	P           int
	// Iteration is the number of completed iterations.
	Iteration int
	// SecondaryPending records that the interrupted run's next iteration
	// is the deferred second FCIU phase.
	SecondaryPending bool
	// Values holds the vertex values after Iteration iterations.
	Values []float64
	// Aux holds the program's auxiliary per-vertex state; nil when the
	// program keeps none.
	Aux []float64
	// AccNext holds the staged next-iteration accumulators (cross-
	// iteration contributions scattered ahead of the barrier).
	AccNext []float64
	// Active holds the frontier bitset words entering the next iteration;
	// TouchedNext the staged next-iteration touched bitset words.
	Active      []uint64
	TouchedNext []uint64
	// Async marks a checkpoint taken by the asynchronous engine, whose loop
	// state differs from BSP's: Iteration doubles as the scheduler step
	// counter, EnqueueSteps records the step at which each of the P interval
	// rows last entered the priority queue (the aging input), and Consumed
	// holds the ever-consumed bitset words (reactivation accounting). The
	// queue itself is not stored — the engine rebuilds it canonically from
	// Values/Active, reproducing identical priorities. BSP checkpoints leave
	// all three zero, keeping the format backward compatible.
	Async        bool
	EnqueueSteps []uint64
	Consumed     []uint64
}

// Path returns the checkpoint file path inside dir.
func Path(dir string) string { return filepath.Join(dir, FileName) }

// Exists reports whether dir holds a checkpoint file.
func Exists(dir string) bool {
	_, err := os.Stat(Path(dir))
	return err == nil
}

// Remove deletes the checkpoint in dir, if any.
func Remove(dir string) error {
	err := os.Remove(Path(dir))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("checkpoint: removing: %w", err)
	}
	return nil
}

// Save atomically writes s to dir, replacing any previous checkpoint. The
// data path is temp file → fsync → rename → directory fsync; a crash at any
// point leaves either the previous checkpoint or the new one, never a torn
// file under the final name.
func Save(dir string, s *State) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: creating dir: %w", err)
	}
	body := s.appendBody(nil)
	head := make([]byte, 0, len(magic)+4)
	head = append(head, magic[:]...)
	head = binary.LittleEndian.AppendUint32(head, crc32.Checksum(body, castagnoli))

	p := Path(dir)
	tmp := p + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	_, werr := f.Write(head)
	if werr == nil {
		_, werr = f.Write(body)
	}
	serr := f.Sync()
	cerr := f.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: writing: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: publishing: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates the checkpoint in dir.
func Load(dir string) (*State, error) {
	data, err := os.ReadFile(Path(dir))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("checkpoint: file truncated at %d bytes", len(data))
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:len(magic)])
	}
	want := binary.LittleEndian.Uint32(data[len(magic):])
	body := data[len(magic)+4:]
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("checkpoint: body crc32c %08x, header records %08x — checkpoint corrupt", got, want)
	}
	s := &State{}
	if err := s.parseBody(body); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return s, nil
}

// Info is the cheap identity summary Inspect returns: enough to decide
// whether a checkpoint is resumable by a given run (same program, same
// layout shape, same engine mode) without touching the state arrays.
type Info struct {
	Algorithm   string
	NumVertices int
	P           int
	Iteration   int
	// Async reports the engine mode that wrote the checkpoint: the BSP and
	// async loop states are mutually non-resumable, and the engine refuses
	// the mismatch. Callers that can fall back (the job server re-running a
	// recovered job fresh) use Inspect to discard the stale file instead of
	// failing the job.
	Async bool
}

// Inspect loads and validates the checkpoint in dir and returns its
// identity. The full state is parsed (validating the CRC and structure) but
// not retained.
func Inspect(dir string) (Info, error) {
	st, err := Load(dir)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Algorithm:   st.Algorithm,
		NumVertices: st.NumVertices,
		P:           st.P,
		Iteration:   st.Iteration,
		Async:       st.Async,
	}, nil
}

const (
	flagSecondaryPending = 1 << 0
	flagHasAux           = 1 << 1
	flagAsync            = 1 << 2
)

func (s *State) appendBody(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s.Algorithm)))
	buf = append(buf, s.Algorithm...)
	buf = binary.AppendUvarint(buf, uint64(s.NumVertices))
	buf = binary.AppendUvarint(buf, uint64(s.P))
	buf = binary.AppendUvarint(buf, uint64(s.Iteration))
	var flags byte
	if s.SecondaryPending {
		flags |= flagSecondaryPending
	}
	if s.Aux != nil {
		flags |= flagHasAux
	}
	if s.Async {
		flags |= flagAsync
	}
	buf = append(buf, flags)
	buf = appendFloats(buf, s.Values)
	if s.Aux != nil {
		buf = appendFloats(buf, s.Aux)
	}
	buf = appendFloats(buf, s.AccNext)
	buf = appendWords(buf, s.Active)
	buf = appendWords(buf, s.TouchedNext)
	if s.Async {
		buf = appendWords(buf, s.EnqueueSteps)
		buf = appendWords(buf, s.Consumed)
	}
	return buf
}

func (s *State) parseBody(data []byte) error {
	r := &reader{data: data}
	nameLen := r.uvarint("algorithm length")
	name := r.bytes(int(nameLen), "algorithm name")
	s.Algorithm = string(name)
	s.NumVertices = int(r.uvarint("vertex count"))
	s.P = int(r.uvarint("interval count"))
	s.Iteration = int(r.uvarint("iteration"))
	flags := r.byte("flags")
	s.SecondaryPending = flags&flagSecondaryPending != 0
	s.Values = r.floats("values")
	if flags&flagHasAux != 0 {
		s.Aux = r.floats("aux")
	}
	s.AccNext = r.floats("accumulators")
	s.Active = r.words("active bitset")
	s.TouchedNext = r.words("touched bitset")
	if flags&flagAsync != 0 {
		s.Async = true
		s.EnqueueSteps = r.words("enqueue steps")
		s.Consumed = r.words("consumed bitset")
	}
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("%d trailing bytes", len(r.data))
	}
	return nil
}

func appendFloats(buf []byte, vals []float64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func appendWords(buf []byte, words []uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(words)))
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// reader is a cursor over the checkpoint body that records the first
// decode error instead of forcing error checks at every field.
type reader struct {
	data []byte
	err  error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("truncated or corrupt %s", what)
	}
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, k := binary.Uvarint(r.data)
	if k <= 0 {
		r.fail(what)
		return 0
	}
	r.data = r.data[k:]
	return v
}

func (r *reader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 1 {
		r.fail(what)
		return 0
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b
}

func (r *reader) bytes(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data) {
		r.fail(what)
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *reader) floats(what string) []float64 {
	n := r.uvarint(what)
	raw := r.bytes(int(n)*8, what)
	if r.err != nil {
		return nil
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return vals
}

func (r *reader) words(what string) []uint64 {
	n := r.uvarint(what)
	raw := r.bytes(int(n)*8, what)
	if r.err != nil {
		return nil
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	return words
}
