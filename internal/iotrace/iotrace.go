// Package iotrace records and analyzes device I/O traces. A Recorder
// attaches to a storage.Device and writes one JSON line per operation; an
// Analyzer reduces a trace to the quantities that matter when debugging an
// out-of-core engine's access pattern: per-class volumes, per-file volumes,
// and the sequential/random operation mix.
package iotrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/graphsd/graphsd/internal/storage"
)

// Event is the JSONL schema of one traced operation. Device operations fill
// the Op/Class/Name/Offset/Bytes/SimNs fields; synthetic scheduler events
// (Op == "sched", appended via RecordSched) instead describe one iteration's
// cost-model outcome and leave the device fields zero.
type Event struct {
	Seq    int64  `json:"seq"`
	Op     string `json:"op"`
	Class  string `json:"class"`
	Name   string `json:"name,omitempty"`
	Offset int64  `json:"off"`
	Bytes  int64  `json:"bytes"`
	SimNs  int64  `json:"sim_ns"`
	// Retries counts the transient-fault retries the operation needed
	// before succeeding (omitted when zero — the healthy-device case).
	Retries int `json:"retries,omitempty"`
	// Scheduler-event fields: the iteration index, the executed I/O model,
	// the corrected predicted cost in simulated nanoseconds (the event's
	// SimNs carries the actual charge), and the relative misprediction
	// |predicted−actual|/actual.
	Iter       int     `json:"iter,omitempty"`
	Model      string  `json:"model,omitempty"`
	PredNs     int64   `json:"pred_ns,omitempty"`
	Mispredict float64 `json:"mispredict,omitempty"`
}

// Recorder serializes device trace events to an io.Writer as JSON lines.
// It is safe for concurrent use (engine I/O paths are concurrent).
type Recorder struct {
	mu  sync.Mutex
	w   *bufio.Writer
	seq int64
	err error
}

// NewRecorder returns a recorder writing to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriterSize(w, 1<<16)}
}

// Attach installs the recorder as dev's tracer.
func (r *Recorder) Attach(dev *storage.Device) {
	dev.SetTracer(r.record)
}

func (r *Recorder) record(ev storage.TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.seq++
	line, err := json.Marshal(Event{
		Seq:     r.seq,
		Op:      ev.Op,
		Class:   ev.Class.String(),
		Name:    ev.Name,
		Offset:  ev.Offset,
		Bytes:   ev.Bytes,
		SimNs:   int64(ev.Cost),
		Retries: ev.Retries,
	})
	if err != nil {
		r.err = err
		return
	}
	if _, err := r.w.Write(append(line, '\n')); err != nil {
		r.err = err
	}
}

// RecordSched appends one synthetic scheduler event to the trace: iteration
// iter executed model with the given corrected prediction, actual device
// charge and relative misprediction. Engines emit these after each observed
// iteration so a single trace file carries both the raw device operations
// and the calibration loop's accuracy against them.
func (r *Recorder) RecordSched(iter int, model string, predicted, actual time.Duration, mispredict float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.seq++
	line, err := json.Marshal(Event{
		Seq:        r.seq,
		Op:         "sched",
		Class:      "sched",
		SimNs:      int64(actual),
		Iter:       iter,
		Model:      model,
		PredNs:     int64(predicted),
		Mispredict: mispredict,
	})
	if err != nil {
		r.err = err
		return
	}
	if _, err := r.w.Write(append(line, '\n')); err != nil {
		r.err = err
	}
}

// Close flushes the recorder and returns any deferred write error.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Events returns the number of recorded events.
func (r *Recorder) Events() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// FileSummary aggregates one file's traffic.
type FileSummary struct {
	Name  string
	Ops   int64
	Bytes int64
}

// Summary is the reduction of a trace.
type Summary struct {
	Events     int64
	TotalBytes int64
	SimTime    time.Duration
	// ByClass maps class name to bytes.
	ByClass map[string]int64
	// RandomOps and SequentialOps split read operations by class.
	RandomOps     int64
	SequentialOps int64
	// Retries sums the transient-fault retries across all operations;
	// RetriedOps counts operations that needed at least one.
	Retries    int64
	RetriedOps int64
	// SchedObserved counts scheduler accuracy events ("sched" lines);
	// SchedMeanMispredict / SchedMaxMispredict aggregate their relative
	// prediction errors. Scheduler events carry no device traffic and are
	// excluded from the byte/time totals above.
	SchedObserved       int64
	SchedMeanMispredict float64
	SchedMaxMispredict  float64
	// TopFiles lists the busiest files by bytes, descending.
	TopFiles []FileSummary
}

// SequentialFraction returns the fraction of read operations that were
// sequential, the out-of-core engine's key access-pattern health metric.
func (s *Summary) SequentialFraction() float64 {
	total := s.RandomOps + s.SequentialOps
	if total == 0 {
		return 1
	}
	return float64(s.SequentialOps) / float64(total)
}

// Analyze reduces a JSONL trace to a Summary. topN bounds TopFiles.
func Analyze(r io.Reader, topN int) (*Summary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	s := &Summary{ByClass: map[string]int64{}}
	perFile := map[string]*FileSummary{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("iotrace: line %d: %w", lineNo, err)
		}
		if ev.Op == "sched" {
			s.SchedObserved++
			s.SchedMeanMispredict += ev.Mispredict // sum; divided below
			if ev.Mispredict > s.SchedMaxMispredict {
				s.SchedMaxMispredict = ev.Mispredict
			}
			continue
		}
		s.Events++
		s.TotalBytes += ev.Bytes
		s.SimTime += time.Duration(ev.SimNs)
		s.ByClass[ev.Class] += ev.Bytes
		if ev.Retries > 0 {
			s.Retries += int64(ev.Retries)
			s.RetriedOps++
		}
		switch ev.Class {
		case "rand-read", "rand-write":
			s.RandomOps++
		case "seq-read", "seq-write":
			s.SequentialOps++
		}
		if ev.Name != "" {
			f := perFile[ev.Name]
			if f == nil {
				f = &FileSummary{Name: ev.Name}
				perFile[ev.Name] = f
			}
			f.Ops++
			f.Bytes += ev.Bytes
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("iotrace: scanning trace: %w", err)
	}
	if s.SchedObserved > 0 {
		s.SchedMeanMispredict /= float64(s.SchedObserved)
	}
	for _, f := range perFile {
		s.TopFiles = append(s.TopFiles, *f)
	}
	sort.Slice(s.TopFiles, func(a, b int) bool {
		if s.TopFiles[a].Bytes != s.TopFiles[b].Bytes {
			return s.TopFiles[a].Bytes > s.TopFiles[b].Bytes
		}
		return s.TopFiles[a].Name < s.TopFiles[b].Name
	})
	if topN > 0 && len(s.TopFiles) > topN {
		s.TopFiles = s.TopFiles[:topN]
	}
	return s, nil
}

// Render writes a human-readable summary.
func (s *Summary) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "events: %d  bytes: %s  simulated time: %v\n",
		s.Events, storage.FormatBytes(s.TotalBytes), s.SimTime.Round(time.Microsecond)); err != nil {
		return err
	}
	classes := make([]string, 0, len(s.ByClass))
	for c := range s.ByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		if _, err := fmt.Fprintf(w, "  %-11s %s\n", c, storage.FormatBytes(s.ByClass[c])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "sequential ops: %.0f%%\n", 100*s.SequentialFraction()); err != nil {
		return err
	}
	if s.Retries > 0 {
		if _, err := fmt.Fprintf(w, "retries: %d across %d ops\n", s.Retries, s.RetriedOps); err != nil {
			return err
		}
	}
	if s.SchedObserved > 0 {
		if _, err := fmt.Fprintf(w, "scheduler: %d observed iterations, mispredict mean %.1f%% max %.1f%%\n",
			s.SchedObserved, 100*s.SchedMeanMispredict, 100*s.SchedMaxMispredict); err != nil {
			return err
		}
	}
	for _, f := range s.TopFiles {
		if _, err := fmt.Fprintf(w, "  %-40s %6d ops  %s\n", f.Name, f.Ops, storage.FormatBytes(f.Bytes)); err != nil {
			return err
		}
	}
	return nil
}
