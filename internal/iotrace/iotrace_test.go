package iotrace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func TestRecorderCapturesDeviceOps(t *testing.T) {
	dev, err := storage.OpenDevice(t.TempDir(), storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Attach(dev)

	if err := dev.WriteFile("a.bin", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadFile("a.bin"); err != nil {
		t.Fatal(err)
	}
	dev.Charge(storage.RandWrite, 7)
	dev.SetTracer(nil)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.Events() != 3 {
		t.Fatalf("recorded %d events, want 3", rec.Events())
	}

	sum, err := Analyze(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 3 || sum.TotalBytes != 207 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.ByClass["seq-write"] != 100 || sum.ByClass["seq-read"] != 100 || sum.ByClass["rand-write"] != 7 {
		t.Fatalf("class split = %v", sum.ByClass)
	}
	if len(sum.TopFiles) != 1 || sum.TopFiles[0].Name != "a.bin" || sum.TopFiles[0].Bytes != 200 {
		t.Fatalf("top files = %+v", sum.TopFiles)
	}
	if sum.SimTime <= 0 {
		t.Fatal("no simulated time recorded")
	}
}

// TestSchedEventsSeparateFromDeviceTotals: scheduler accuracy events ride in
// the same trace but never pollute the device byte/time totals.
func TestSchedEventsSeparateFromDeviceTotals(t *testing.T) {
	dev, err := storage.OpenDevice(t.TempDir(), storage.HDD)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Attach(dev)
	if err := dev.WriteFile("a.bin", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	rec.RecordSched(0, "on-demand", 1000, 1100, 0.1)
	rec.RecordSched(1, "full", 2000, 2600, 0.3)
	dev.SetTracer(nil)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := Analyze(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 1 || sum.TotalBytes != 100 {
		t.Fatalf("sched events leaked into device totals: %+v", sum)
	}
	if sum.SchedObserved != 2 {
		t.Fatalf("SchedObserved = %d, want 2", sum.SchedObserved)
	}
	if sum.SchedMeanMispredict < 0.199 || sum.SchedMeanMispredict > 0.201 {
		t.Fatalf("mean mispredict = %v, want 0.2", sum.SchedMeanMispredict)
	}
	if sum.SchedMaxMispredict != 0.3 {
		t.Fatalf("max mispredict = %v, want 0.3", sum.SchedMaxMispredict)
	}
	var render bytes.Buffer
	if err := sum.Render(&render); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(render.String(), "scheduler: 2 observed") {
		t.Fatalf("render output: %s", render.String())
	}
}

func TestAnalyzeRejectsGarbage(t *testing.T) {
	if _, err := Analyze(strings.NewReader("not json\n"), 5); err == nil {
		t.Fatal("garbage trace accepted")
	}
	// Blank lines are tolerated.
	sum, err := Analyze(strings.NewReader("\n\n"), 5)
	if err != nil || sum.Events != 0 {
		t.Fatalf("blank trace: %+v, %v", sum, err)
	}
}

func TestSequentialFraction(t *testing.T) {
	s := &Summary{SequentialOps: 3, RandomOps: 1}
	if got := s.SequentialFraction(); got != 0.75 {
		t.Fatalf("fraction = %v", got)
	}
	empty := &Summary{}
	if empty.SequentialFraction() != 1 {
		t.Fatal("empty trace fraction != 1")
	}
}

// TestTraceFullEngineRun: an engine run under trace produces a trace whose
// byte totals agree with the engine's own I/O accounting.
func TestTraceFullEngineRun(t *testing.T) {
	dev, err := storage.OpenDevice(t.TempDir(), storage.ScaledHDD)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.RMAT(8, 8, gen.Graph500, 19)
	if err != nil {
		t.Fatal(err)
	}
	l, err := partition.Build(dev, g, 4)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Attach(dev)
	res, err := core.Run(l, &algorithms.ConnectedComponents{}, core.Options{DefaultBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	dev.SetTracer(nil)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := Analyze(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalBytes != res.IO.TotalBytes() {
		t.Fatalf("trace bytes %d != engine accounting %d", sum.TotalBytes, res.IO.TotalBytes())
	}
	if sum.SimTime != res.IO.TotalTime() {
		t.Fatalf("trace time %v != engine accounting %v", sum.SimTime, res.IO.TotalTime())
	}
	var render bytes.Buffer
	if err := sum.Render(&render); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(render.String(), "sequential ops") {
		t.Fatalf("render output: %s", render.String())
	}
}
