// Package loadgen is the closed-loop load generator behind `graphsd
// bench-serve` and the serve-SLO tests: per-tenant worker pools drive
// mixed algorithm-job and edge-mutation traffic against a live server over
// HTTP, and the run distils into a Report with p50/p99 submit-to-done
// latency, jobs/sec, and per-tenant fairness shares.
//
// Closed-loop means every worker keeps a fixed number of operations in
// flight (Burst, default one): submit, poll to terminal, record, repeat.
// Offered load therefore adapts to what the server sustains — the
// generator measures capacity and fairness rather than timeout behaviour
// under an arbitrary open-loop arrival rate. A tenant that wants to flood
// runs more workers or a deeper Burst; a deep Burst floods the admission
// queue without adding client goroutines, which keeps the generator
// honest on small machines where client CPU competes with the server.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Tenant is one credentialed traffic source.
type Tenant struct {
	// Name labels the tenant in the report; it should match the server's
	// tenant name for that Token.
	Name string
	// Token is sent as the Authorization bearer token. Empty sends no
	// header (single-tenant servers).
	Token string
	// Workers is this tenant's closed-loop worker count; 0 falls back to
	// Options.Workers.
	Workers int
	// Burst is how many jobs each worker keeps in flight at once (default
	// 1). A flooding tenant uses a deep Burst: it piles backlog into the
	// server's admission queue — which is what fair-share dequeue must
	// absorb — without the extra polling goroutines of more Workers.
	Burst int
}

// Options configures a load-generation run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8090".
	BaseURL string
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Tenants are the traffic sources. Empty runs one anonymous tenant.
	Tenants []Tenant
	// Workers is the per-tenant closed-loop worker count (default 2).
	Workers int
	// Duration is how long workers keep submitting (default 5s). In-flight
	// operations run to completion past the deadline so every submitted
	// job's latency is observed.
	Duration time.Duration
	// Graph and Algorithms shape the job mix; workers cycle through the
	// algorithm list with per-worker random sources in [0, NumVertices).
	Graph      string
	Algorithms []string
	// NumVertices bounds random job sources and mutation endpoints; 0
	// pins every source to vertex 0.
	NumVertices int
	// MaxIterations caps each submitted job (keeps bench jobs short).
	MaxIterations int
	// MutateEvery makes every Nth operation an edge-mutation batch of
	// MutateBatch inserts instead of a job (0: jobs only). The target
	// graph must be served mutable.
	MutateEvery int
	MutateBatch int
	// PollInterval is the status-poll period while a job runs (default
	// 5ms — bench jobs are short).
	PollInterval time.Duration
	// Seed makes worker randomness reproducible.
	Seed int64
}

// TenantReport is one tenant's slice of a run.
type TenantReport struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	Burst   int     `json:"burst,omitempty"`
	Jobs    int64   `json:"jobs_done"`
	JobsPS  float64 `json:"jobs_per_sec"`
	// Share is this tenant's fraction of all completed jobs — the
	// fairness figure the SLO gate reads.
	Share    float64 `json:"share"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
	Mutates  int64   `json:"mutation_batches"`
	Rejected int64   `json:"rejected_429"`
	Errors   int64   `json:"errors"`
}

// Report is the whole run: the BENCH_serve.json schema.
type Report struct {
	DurationS float64 `json:"duration_s"`
	Jobs      int64   `json:"jobs_done"`
	JobsPS    float64 `json:"jobs_per_sec"`
	P50ms     float64 `json:"p50_ms"`
	P99ms     float64 `json:"p99_ms"`
	Mutates   int64   `json:"mutation_batches"`
	Rejected  int64   `json:"rejected_429"`
	Errors    int64   `json:"errors"`
	// MinShare is the smallest per-tenant share of completed jobs; with
	// k equal-weight tenants a perfectly fair server scores 1/k, and the
	// SLO gate asserts a floor under it.
	MinShare float64        `json:"min_share"`
	Tenants  []TenantReport `json:"tenants"`
}

// worker-local tallies, merged under one mutex at the end of each worker.
type tally struct {
	jobs     int64
	mutates  int64
	rejected int64
	errors   int64
	lat      []float64 // submit→done, milliseconds
}

// Run drives the configured load until Options.Duration elapses (or ctx
// cancels, whichever first) and returns the distilled report.
func Run(ctx context.Context, opts Options) (Report, error) {
	if opts.BaseURL == "" {
		return Report{}, fmt.Errorf("loadgen: BaseURL is required")
	}
	if opts.Graph == "" {
		return Report{}, fmt.Errorf("loadgen: Graph is required")
	}
	if len(opts.Algorithms) == 0 {
		opts.Algorithms = []string{"pr"}
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 5 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	tenants := opts.Tenants
	if len(tenants) == 0 {
		tenants = []Tenant{{Name: "default"}}
	}

	var (
		mu      sync.Mutex
		tallies = make(map[string]*tally, len(tenants))
		wg      sync.WaitGroup
	)
	for _, t := range tenants {
		tallies[t.Name] = &tally{}
	}
	start := time.Now()
	deadline := start.Add(opts.Duration)
	widx := 0
	for _, t := range tenants {
		workers := t.Workers
		if workers <= 0 {
			workers = opts.Workers
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			widx++
			go func(t Tenant, seed int64) {
				defer wg.Done()
				local := runWorker(ctx, client, opts, t, seed, deadline)
				mu.Lock()
				agg := tallies[t.Name]
				agg.jobs += local.jobs
				agg.mutates += local.mutates
				agg.rejected += local.rejected
				agg.errors += local.errors
				agg.lat = append(agg.lat, local.lat...)
				mu.Unlock()
			}(t, opts.Seed+int64(widx))
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := Report{DurationS: elapsed, MinShare: 1}
	var allLat []float64
	for _, t := range tenants {
		agg := tallies[t.Name]
		tr := TenantReport{
			Name: t.Name, Workers: t.Workers, Burst: t.Burst,
			Jobs: agg.jobs, Mutates: agg.mutates,
			Rejected: agg.rejected, Errors: agg.errors,
			JobsPS: float64(agg.jobs) / elapsed,
			P50ms:  percentile(agg.lat, 50), P99ms: percentile(agg.lat, 99),
		}
		if tr.Workers <= 0 {
			tr.Workers = opts.Workers
		}
		rep.Tenants = append(rep.Tenants, tr)
		rep.Jobs += agg.jobs
		rep.Mutates += agg.mutates
		rep.Rejected += agg.rejected
		rep.Errors += agg.errors
		allLat = append(allLat, agg.lat...)
	}
	rep.JobsPS = float64(rep.Jobs) / elapsed
	rep.P50ms = percentile(allLat, 50)
	rep.P99ms = percentile(allLat, 99)
	for i := range rep.Tenants {
		if rep.Jobs > 0 {
			rep.Tenants[i].Share = float64(rep.Tenants[i].Jobs) / float64(rep.Jobs)
		}
		if rep.Tenants[i].Share < rep.MinShare {
			rep.MinShare = rep.Tenants[i].Share
		}
	}
	return rep, nil
}

// runWorker is one closed-loop worker: it keeps Burst operations in
// flight until the deadline passes.
func runWorker(ctx context.Context, client *http.Client, opts Options, t Tenant, seed int64, deadline time.Time) *tally {
	rng := rand.New(rand.NewSource(seed))
	local := &tally{}
	burst := t.Burst
	if burst < 1 {
		burst = 1
	}
	for op := 0; time.Now().Before(deadline) && ctx.Err() == nil; op++ {
		if opts.MutateEvery > 0 && op%opts.MutateEvery == opts.MutateEvery-1 {
			doMutate(ctx, client, opts, t, rng, local)
			continue
		}
		doJobBurst(ctx, client, opts, t, rng, local, op, burst)
	}
	return local
}

func (t Tenant) auth(req *http.Request) {
	if t.Token != "" {
		req.Header.Set("Authorization", "Bearer "+t.Token)
	}
}

func source(opts Options, rng *rand.Rand) uint32 {
	if opts.NumVertices <= 0 {
		return 0
	}
	return uint32(rng.Intn(opts.NumVertices))
}

// doJobBurst submits up to burst algorithm jobs back-to-back, then polls
// each to a terminal state; a job's submit-to-done wall time is its
// recorded latency.
func doJobBurst(ctx context.Context, client *http.Client, opts Options, t Tenant, rng *rand.Rand, local *tally, op, burst int) {
	type inflight struct {
		id    string
		begin time.Time
	}
	var jobs []inflight
	for i := 0; i < burst; i++ {
		if id, begin, ok := submitJob(ctx, client, opts, t, rng, local, op+i); ok {
			jobs = append(jobs, inflight{id, begin})
		}
	}
	for _, j := range jobs {
		state, ok := pollJob(ctx, client, opts, t, j.id)
		if !ok {
			local.errors++
			continue
		}
		if state == "done" {
			local.jobs++
			local.lat = append(local.lat, float64(time.Since(j.begin).Microseconds())/1000)
		} else {
			local.errors++
		}
	}
}

// submitJob posts one job; false means rejected or errored (tallied).
func submitJob(ctx context.Context, client *http.Client, opts Options, t Tenant, rng *rand.Rand, local *tally, op int) (string, time.Time, bool) {
	body, _ := json.Marshal(map[string]any{
		"graph":          opts.Graph,
		"algorithm":      opts.Algorithms[op%len(opts.Algorithms)],
		"source":         source(opts, rng),
		"max_iterations": opts.MaxIterations,
	})
	begin := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		local.errors++
		return "", begin, false
	}
	req.Header.Set("Content-Type", "application/json")
	t.auth(req)
	resp, err := client.Do(req)
	if err != nil {
		local.errors++
		return "", begin, false
	}
	var sub struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		local.rejected++
		// Closed loop: back off a poll interval instead of hammering the
		// full queue.
		sleepCtx(ctx, opts.PollInterval)
		return "", begin, false
	case resp.StatusCode != http.StatusAccepted || err != nil || sub.ID == "":
		local.errors++
		sleepCtx(ctx, opts.PollInterval)
		return "", begin, false
	}
	return sub.ID, begin, true
}

// pollJob polls one job to a terminal state. It intentionally ignores the
// run deadline: a submitted job's completion must be observed or its
// latency (and a fairness datum) would be silently dropped.
func pollJob(ctx context.Context, client *http.Client, opts Options, t Tenant, id string) (string, bool) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, opts.BaseURL+"/v1/jobs/"+id, nil)
		if err != nil {
			return "", false
		}
		t.auth(req)
		resp, err := client.Do(req)
		if err != nil {
			return "", false
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return "", false
		}
		switch st.State {
		case "done", "failed", "cancelled", "expired":
			return st.State, true
		}
		if !sleepCtx(ctx, opts.PollInterval) {
			return "", false
		}
	}
}

// doMutate posts one batch of random edge inserts.
func doMutate(ctx context.Context, client *http.Client, opts Options, t Tenant, rng *rand.Rand, local *tally) {
	batch := opts.MutateBatch
	if batch <= 0 {
		batch = 16
	}
	muts := make([]map[string]any, batch)
	for i := range muts {
		muts[i] = map[string]any{
			"op": "insert", "src": source(opts, rng), "dst": source(opts, rng), "weight": 1,
		}
	}
	body, _ := json.Marshal(map[string]any{"mutations": muts})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		opts.BaseURL+"/v1/graphs/"+opts.Graph+"/edges", bytes.NewReader(body))
	if err != nil {
		local.errors++
		return
	}
	req.Header.Set("Content-Type", "application/json")
	t.auth(req)
	resp, err := client.Do(req)
	if err != nil {
		local.errors++
		return
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		local.mutates++
	case http.StatusTooManyRequests:
		local.rejected++
		sleepCtx(ctx, opts.PollInterval)
	default:
		local.errors++
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// percentile returns the pth percentile (nearest-rank) of v in place-safe
// fashion; 0 for an empty slice.
func percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
