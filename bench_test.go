// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// family per table/figure; DESIGN.md §4 is the index). Each benchmark runs
// the real out-of-core pipeline over quick-scale datasets and reports the
// simulated-disk metrics as custom benchmark outputs:
//
//	exec-ms    simulated execution time (I/O model time + measured compute)
//	io-KiB     total I/O traffic
//
// Comparative shapes (who wins, by how much) are the reproduction target;
// wall-clock ns/op mostly measures the host filesystem and is not the
// figure of merit.
package graphsd_test

import (
	"fmt"
	"testing"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/baseline"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/harness"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

// benchGraph returns the quick-scale stand-in for a Table 3 dataset.
func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	for _, d := range harness.Datasets(true) {
		if d.Name == name {
			g, err := d.Build(1)
			if err != nil {
				b.Fatal(err)
			}
			return g
		}
	}
	b.Fatalf("unknown dataset %s", name)
	return nil
}

func benchLayout(b *testing.B, g *graph.Graph, sys string) *partition.Layout {
	b.Helper()
	dev, err := storage.OpenDevice(b.TempDir(), storage.ScaledHDD)
	if err != nil {
		b.Fatal(err)
	}
	var build func(*storage.Device, *graph.Graph, int, ...partition.BuildOption) (*partition.Layout, error)
	switch sys {
	case "graphsd":
		build = partition.Build
	case "husgraph":
		build = partition.BuildHUSGraph
	case "lumos":
		build = partition.BuildLumos
	}
	l, err := build(dev, g, 6)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

func reportResult(b *testing.B, res *core.Result) {
	b.Helper()
	b.ReportMetric(float64(res.ExecTime().Microseconds())/1000, "exec-ms")
	b.ReportMetric(float64(res.IO.TotalBytes())/1024, "io-KiB")
}

func paperAlgs() []harness.Algorithm { return harness.PaperAlgorithms() }

// BenchmarkTable3Generate regenerates the Table 3 datasets.
func BenchmarkTable3Generate(b *testing.B) {
	for _, d := range harness.Datasets(true) {
		b.Run(d.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := d.Build(1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(g.NumEdges()), "edges")
			}
		})
	}
}

// BenchmarkFig5Table4 regenerates the Figure 5 / Table 4 matrix: every
// dataset × algorithm × system execution.
func BenchmarkFig5Table4(b *testing.B) {
	for _, ds := range []string{"twitter-sim", "sk-sim", "uk-sim", "ukunion-sim", "kron-sim"} {
		g := benchGraph(b, ds)
		gw := gen.Weighted(g.Clone(), 16, 2)
		for _, alg := range paperAlgs() {
			in := g
			if alg.Weighted {
				in = gw
			}
			b.Run(fmt.Sprintf("%s/%s/graphsd", ds, alg.Name), func(b *testing.B) {
				l := benchLayout(b, in, "graphsd")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := core.Run(l, alg.New(0), core.Options{DefaultBuffer: true})
					if err != nil {
						b.Fatal(err)
					}
					reportResult(b, res)
				}
			})
			b.Run(fmt.Sprintf("%s/%s/husgraph", ds, alg.Name), func(b *testing.B) {
				l := benchLayout(b, in, "husgraph")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := baseline.RunHUSGraph(l, alg.New(0), baseline.Options{})
					if err != nil {
						b.Fatal(err)
					}
					reportResult(b, res)
				}
			})
			b.Run(fmt.Sprintf("%s/%s/lumos", ds, alg.Name), func(b *testing.B) {
				l := benchLayout(b, in, "lumos")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := baseline.RunLumos(l, alg.New(0), baseline.Options{})
					if err != nil {
						b.Fatal(err)
					}
					reportResult(b, res)
				}
			})
		}
	}
}

// BenchmarkFig6Breakdown regenerates the Figure 6 runtime breakdown on the
// Twitter stand-in, reporting the I/O and compute shares separately.
func BenchmarkFig6Breakdown(b *testing.B) {
	g := benchGraph(b, "twitter-sim")
	for _, alg := range paperAlgs() {
		if alg.Weighted {
			continue // twitter breakdown in the paper uses unweighted runs plus SSSP; keep unweighted here
		}
		b.Run(alg.Name, func(b *testing.B) {
			l := benchLayout(b, g, "graphsd")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(l, alg.New(0), core.Options{DefaultBuffer: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.IOTime().Microseconds())/1000, "io-ms")
				b.ReportMetric(float64(res.ComputeTime.Microseconds())/1000, "update-ms")
			}
		})
	}
}

// BenchmarkFig7Traffic regenerates the Figure 7 I/O traffic comparison.
func BenchmarkFig7Traffic(b *testing.B) {
	for _, ds := range []string{"twitter-sim", "uk-sim"} {
		g := benchGraph(b, ds)
		for _, sys := range []string{"graphsd", "husgraph", "lumos"} {
			b.Run(ds+"/CC/"+sys, func(b *testing.B) {
				l := benchLayout(b, g, sys)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var res *core.Result
					var err error
					switch sys {
					case "graphsd":
						res, err = core.Run(l, &algorithms.ConnectedComponents{}, core.Options{DefaultBuffer: true})
					case "husgraph":
						res, err = baseline.RunHUSGraph(l, &algorithms.ConnectedComponents{}, baseline.Options{})
					case "lumos":
						res, err = baseline.RunLumos(l, &algorithms.ConnectedComponents{}, baseline.Options{})
					}
					if err != nil {
						b.Fatal(err)
					}
					reportResult(b, res)
				}
			})
		}
	}
}

// BenchmarkFig8Preprocess regenerates the Figure 8 preprocessing
// comparison: per-system layout builds.
func BenchmarkFig8Preprocess(b *testing.B) {
	g := benchGraph(b, "ukunion-sim")
	for _, sys := range []string{"graphsd", "husgraph", "lumos"} {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dev, err := storage.OpenDevice(b.TempDir(), storage.ScaledHDD)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var l *partition.Layout
				switch sys {
				case "graphsd":
					l, err = partition.Build(dev, g, 6)
				case "husgraph":
					l, err = partition.BuildHUSGraph(dev, g, 6)
				case "lumos":
					l, err = partition.BuildLumos(dev, g, 6)
				}
				if err != nil {
					b.Fatal(err)
				}
				s := dev.Stats()
				b.ReportMetric(float64((s.TotalTime()+l.PrepCPU).Microseconds())/1000, "prep-ms")
				b.ReportMetric(float64(s.WriteBytes())/1024, "written-KiB")
			}
		})
	}
}

// BenchmarkFig9Ablations regenerates the Figure 9 update-strategy
// ablations on the Twitter stand-in (CC workload).
func BenchmarkFig9Ablations(b *testing.B) {
	g := benchGraph(b, "twitter-sim")
	variants := map[string]core.Options{
		"graphsd": {DefaultBuffer: true},
		"b1":      {DefaultBuffer: true, DisableCrossIteration: true},
		"b2":      {DefaultBuffer: true, ForceModel: core.ForceFull},
	}
	for name, opts := range variants {
		b.Run(name, func(b *testing.B) {
			l := benchLayout(b, g, "graphsd")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(l, &algorithms.ConnectedComponents{}, opts)
				if err != nil {
					b.Fatal(err)
				}
				reportResult(b, res)
			}
		})
	}
}

// BenchmarkFig10Scheduling regenerates the Figure 10 comparison: CC on the
// UKUnion stand-in under the adaptive scheduler and both forced models.
func BenchmarkFig10Scheduling(b *testing.B) {
	g := benchGraph(b, "ukunion-sim")
	variants := map[string]core.Options{
		"adaptive":       {DefaultBuffer: true},
		"full-only":      {DefaultBuffer: true, ForceModel: core.ForceFull},
		"on-demand-only": {ForceModel: core.ForceOnDemand},
	}
	for name, opts := range variants {
		b.Run(name, func(b *testing.B) {
			l := benchLayout(b, g, "graphsd")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(l, &algorithms.ConnectedComponents{}, opts)
				if err != nil {
					b.Fatal(err)
				}
				reportResult(b, res)
			}
		})
	}
}

// BenchmarkFig11Overhead regenerates the Figure 11 measurement: the cost
// of the per-iteration benefit evaluation itself.
func BenchmarkFig11Overhead(b *testing.B) {
	g := benchGraph(b, "twitter-sim")
	l := benchLayout(b, g, "graphsd")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(l, &algorithms.PageRankDelta{Iterations: 20, Tolerance: 1e-6}, core.Options{DefaultBuffer: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SchedulerOverhead.Microseconds()), "sched-µs")
		b.ReportMetric(float64(res.IOTime().Microseconds())/1000, "io-ms")
	}
}

// BenchmarkFig12Buffering regenerates the Figure 12 buffering experiment
// on the UKUnion stand-in (PR workload, forced full so FCIU dominates).
func BenchmarkFig12Buffering(b *testing.B) {
	g := benchGraph(b, "ukunion-sim")
	variants := map[string]core.Options{
		"buffered":   {DefaultBuffer: true, ForceModel: core.ForceFull},
		"unbuffered": {ForceModel: core.ForceFull},
	}
	for name, opts := range variants {
		b.Run(name, func(b *testing.B) {
			l := benchLayout(b, g, "graphsd")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(l, &algorithms.PageRank{Iterations: 6}, opts)
				if err != nil {
					b.Fatal(err)
				}
				reportResult(b, res)
			}
		})
	}
}
