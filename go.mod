module github.com/graphsd/graphsd

go 1.22
