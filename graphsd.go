// Package graphsd is a reproduction of "GraphSD: A State and Dependency
// aware Out-of-Core Graph Processing System" (Xu, Jiang, Wang, Cheng,
// Fang — ICPP 2022).
//
// The implementation lives under internal/ (see DESIGN.md for the module
// inventory) and is driven through the commands in cmd/:
//
//	cmd/graphsd     — preprocess, run, compare, stats, measure
//	cmd/graphgen    — synthetic dataset generator
//	cmd/graphbench  — regenerates every table and figure of the paper
//
// The benchmarks in bench_test.go at this package's root regenerate the
// paper's evaluation artifacts under `go test -bench`; EXPERIMENTS.md
// records measured-vs-paper outcomes.
package graphsd
