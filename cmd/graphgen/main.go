// Command graphgen produces synthetic graphs in the binary or text edge
// list format consumed by the graphsd CLI.
//
// Usage:
//
//	graphgen -kind rmat -scale 16 -edgefactor 16 -o graph.bin
//	graphgen -kind powerlaw -n 100000 -m 1600000 -o graph.txt -format text
//	graphgen -preset twitter-sim -o twitter.bin
//	graphgen -kind weblike -n 50000 -m 800000 -weighted -o roads.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/graphsd/graphsd/internal/gen"
	"github.com/graphsd/graphsd/internal/graph"
)

func main() {
	var (
		kind       = flag.String("kind", "rmat", "generator: rmat, erdos, powerlaw, weblike, ba, chain, star, complete, clustered")
		preset     = flag.String("preset", "", "named Table 3 stand-in (twitter-sim, sk-sim, uk-sim, ukunion-sim, kron-sim); overrides -kind")
		scale      = flag.Int("scale", 14, "rmat: log2 of vertex count")
		edgeFactor = flag.Int("edgefactor", 16, "rmat: edges per vertex")
		n          = flag.Int("n", 10000, "vertex count (non-rmat generators)")
		m          = flag.Int("m", 160000, "edge count (non-rmat generators)")
		zipf       = flag.Float64("zipf", 1.9, "powerlaw: zipf exponent (>1)")
		locality   = flag.Float64("locality", 0.8, "weblike: fraction of local links")
		seed       = flag.Int64("seed", 1, "generator seed")
		weighted   = flag.Bool("weighted", false, "assign pseudo-random edge weights in (1,16]")
		format     = flag.String("format", "binary", "output format: binary or text")
		codecName  = flag.String("codec", "raw", "binary edge stream encoding: raw or delta")
		out        = flag.String("o", "", "output file (required)")
	)
	flag.Parse()

	if *out == "" {
		fatalf("-o is required")
	}

	var g *graph.Graph
	var err error
	if *preset != "" {
		var p gen.Preset
		p, err = gen.ByName(*preset)
		if err == nil {
			g, err = p.Build(*seed)
		}
	} else {
		switch *kind {
		case "rmat":
			g, err = gen.RMAT(*scale, *edgeFactor, gen.Graph500, *seed)
		case "erdos":
			g, err = gen.ErdosRenyi(*n, *m, *seed)
		case "powerlaw":
			g, err = gen.PowerLaw(*n, *m, *zipf, *seed)
		case "weblike":
			g, err = gen.WebLike(*n, *m, *locality, *seed)
		case "ba", "barabasi":
			attach := *m / *n
			if attach < 1 {
				attach = 1
			}
			g, err = gen.BarabasiAlbert(*n, attach, *seed)
		case "chain":
			g = gen.Chain(*n)
		case "star":
			g = gen.Star(*n)
		case "complete":
			g = gen.Complete(*n)
		case "clustered":
			g, err = gen.Clustered(8, *n/8, *m/8, *n/100+1, *seed)
		default:
			fatalf("unknown generator %q", *kind)
		}
	}
	if err != nil {
		fatalf("generating: %v", err)
	}
	if *weighted {
		gen.Weighted(g, 16, *seed+1)
	}

	codec, err := graph.ParseCodec(*codecName)
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("creating %s: %v", *out, err)
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = graph.WriteBinaryCodec(f, g, codec)
	case "text":
		if codec != graph.CodecRaw {
			fatalf("-codec %s only applies to the binary format", codec)
		}
		err = graph.WriteEdgeList(f, g)
	default:
		fatalf("unknown format %q", *format)
	}
	if err != nil {
		fatalf("writing: %v", err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges, weighted=%t\n", *out, g.NumVertices, g.NumEdges(), g.Weighted)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
