package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var genBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "graphgen-e2e-*")
	if err != nil {
		panic(err)
	}
	genBin = filepath.Join(dir, "graphgen")
	out, err := exec.Command("go", "build", "-o", genBin,
		"github.com/graphsd/graphsd/cmd/graphgen").CombinedOutput()
	if err != nil {
		panic(string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"rmat", "erdos", "powerlaw", "weblike", "ba", "chain", "star", "clustered"} {
		out := filepath.Join(dir, kind+".bin")
		cmd := exec.Command(genBin, "-kind", kind, "-scale", "8", "-edgefactor", "4",
			"-n", "200", "-m", "800", "-o", out)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("%s: %v\n%s", kind, err, msg)
		}
		fi, err := os.Stat(out)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("%s: empty output (%v)", kind, err)
		}
	}
}

func TestGeneratePresetTextWeighted(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "p.txt")
	msg, err := exec.Command(genBin, "-preset", "twitter-sim", "-format", "text",
		"-weighted", "-o", out).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, msg)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "#") {
		t.Fatalf("text output missing header: %.60s", data)
	}
}

func TestGenerateErrors(t *testing.T) {
	if out, err := exec.Command(genBin, "-kind", "nope", "-o", "/tmp/x").CombinedOutput(); err == nil {
		t.Fatalf("unknown kind succeeded:\n%s", out)
	}
	if out, err := exec.Command(genBin).CombinedOutput(); err == nil {
		t.Fatalf("missing -o succeeded:\n%s", out)
	}
	if out, err := exec.Command(genBin, "-preset", "nope", "-o", "/tmp/x").CombinedOutput(); err == nil {
		t.Fatalf("unknown preset succeeded:\n%s", out)
	}
}

func TestGenerateDeltaCodec(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.bin")
	delta := filepath.Join(dir, "delta.bin")
	for path, codec := range map[string]string{raw: "raw", delta: "delta"} {
		msg, err := exec.Command(genBin, "-kind", "rmat", "-scale", "9", "-edgefactor", "8",
			"-codec", codec, "-o", path).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", codec, err, msg)
		}
	}
	fr, err := os.Stat(raw)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := os.Stat(delta)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Size()*2 > fr.Size() {
		t.Fatalf("delta file %d bytes not at least 2x below raw %d", fd.Size(), fr.Size())
	}
	// Text format rejects the codec.
	if out, err := exec.Command(genBin, "-kind", "chain", "-n", "10", "-format", "text",
		"-codec", "delta", "-o", filepath.Join(dir, "t.txt")).CombinedOutput(); err == nil {
		t.Fatalf("text+delta succeeded:\n%s", out)
	}
}
