package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// scrapeMetricE2E pulls one labelled sample out of a live /metrics page.
func scrapeMetricE2E(t *testing.T, base, metric, graphName string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(fmt.Sprintf(`(?m)^%s\{graph="%s"[^}]*\} (\S+)$`, metric, graphName))
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s{graph=%q} absent from /metrics", metric, graphName)
	}
	return string(m[1])
}

// TestMutableServeEndToEnd drives the full mutable-graph loop on the real
// binary: serve -mutable, `graphsd ingest` a mutation file, query, compact
// over HTTP, SIGKILL the server, restart it over the same layout, and
// require byte-identical query results plus lifetime mutation/compaction
// counters that survived the crash.
func TestMutableServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	layoutDir := filepath.Join(dir, "layout")
	run(t, graphgenBin, "-kind", "rmat", "-scale", "10", "-edgefactor", "8", "-o", graphPath)
	run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", layoutDir, "-p", "4")

	serveArgs := []string{
		"-graph", "m=" + layoutDir, "-profile", "ssd",
		"-mutable", "-memtable-bytes", "4096", "-compact-threshold", "64",
	}
	p1 := startServe(t, serveArgs...)

	// Ingest a mutation file through the CLI: inserts (plain and '+'),
	// deletes, comments, a weighted-format line on an unweighted graph is
	// NOT included (the server would 400 the batch).
	var muts strings.Builder
	muts.WriteString("# ring through the low vertex IDs\n")
	for v := 0; v < 200; v++ {
		fmt.Fprintf(&muts, "+ %d %d\n", v, (v+1)%200)
	}
	for v := 0; v < 50; v++ {
		fmt.Fprintf(&muts, "%d %d\n", 300+v, 400+v) // bare lines ingest as inserts
	}
	for v := 0; v < 30; v++ {
		fmt.Fprintf(&muts, "- %d %d\n", v, (v+1)%200) // delete a slice of the ring
	}
	mutFile := filepath.Join(dir, "muts.txt")
	if err := os.WriteFile(mutFile, []byte(muts.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, graphsdBin, "ingest", "-server", p1.base, "-graph", "m", "-file", mutFile, "-batch", "64")
	if !strings.Contains(out, "ingested 280 mutations") {
		t.Fatalf("ingest output: %s", out)
	}
	if v := scrapeMetricE2E(t, p1.base, "graphsd_mutations_total", "m"); v != "280" {
		t.Fatalf("graphsd_mutations_total = %s, want 280", v)
	}

	// Query the mutated graph; keep the full result for the restart check.
	j1 := p1.submit(t, `{"graph":"m","algorithm":"pr"}`)
	p1.waitDone(t, j1.ID)
	res1 := p1.fullResult(t, j1.ID)

	// Compact over HTTP: layers fold into the base, queries keep answering.
	resp, err := http.Post(p1.base+"/v1/graphs/m/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(cbody, []byte(`"delta_layers": 0`)) {
		t.Fatalf("compact: HTTP %d: %s", resp.StatusCode, cbody)
	}
	if v := scrapeMetricE2E(t, p1.base, "graphsd_compactions_total", "m"); v != "1" {
		t.Fatalf("graphsd_compactions_total = %s, want 1", v)
	}
	j2 := p1.submit(t, `{"graph":"m","algorithm":"pr"}`)
	p1.waitDone(t, j2.ID)
	if !bytes.Equal(res1, p1.fullResult(t, j2.ID)) {
		t.Fatal("compaction changed query results")
	}

	// Crash (SIGKILL, no drain) and restart over the same layout directory.
	if err := p1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if err := <-p1.done; err == nil {
		t.Fatal("SIGKILLed server exited cleanly?")
	}
	p1.done <- fmt.Errorf("already reaped")

	p2 := startServe(t, serveArgs...)
	// Lifetime counters come back from the manifest.
	if v := scrapeMetricE2E(t, p2.base, "graphsd_mutations_total", "m"); v != "280" {
		t.Fatalf("after restart: graphsd_mutations_total = %s, want 280", v)
	}
	if v := scrapeMetricE2E(t, p2.base, "graphsd_compactions_total", "m"); v != "1" {
		t.Fatalf("after restart: graphsd_compactions_total = %s, want 1", v)
	}
	if v := scrapeMetricE2E(t, p2.base, "graphsd_delta_layers", "m"); v != "0" {
		t.Fatalf("after restart: graphsd_delta_layers = %s, want 0", v)
	}

	// The restarted server answers the same query byte-identically, and
	// keeps taking writes.
	j3 := p2.submit(t, `{"graph":"m","algorithm":"pr"}`)
	p2.waitDone(t, j3.ID)
	if !bytes.Equal(res1, p2.fullResult(t, j3.ID)) {
		t.Fatal("restart changed query results")
	}
	resp2, err := http.Post(p2.base+"/v1/graphs/m/edges", "application/json",
		strings.NewReader(`{"mutations":[{"op":"insert","src":7,"dst":9}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("mutate after restart: HTTP %d", resp2.StatusCode)
	}
	if v := scrapeMetricE2E(t, p2.base, "graphsd_mutations_total", "m"); v != "281" {
		t.Fatalf("after restart write: graphsd_mutations_total = %s, want 281", v)
	}

	// `graphsd stats` on the (now quiet) layout reports the mutable state.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p2.done:
		p2.done <- nil
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit within 5s of SIGTERM")
	}
	statsOut := run(t, graphsdBin, "stats", "-layout", layoutDir)
	for _, want := range []string{"generation: 1", "mutations:  281"} {
		if !strings.Contains(statsOut, want) {
			t.Fatalf("stats output missing %q:\n%s", want, statsOut)
		}
	}
}
