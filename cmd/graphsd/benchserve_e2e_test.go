package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// bootServe starts the real `graphsd serve` binary with extra args and
// returns its base URL. The process is reaped on test cleanup.
func bootServe(t *testing.T, layoutDir string, extra ...string) string {
	t.Helper()
	args := append([]string{"serve",
		"-listen", "127.0.0.1:0",
		"-graph", "g=" + layoutDir,
	}, extra...)
	cmd := exec.Command(graphsdBin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	procDone := make(chan error, 1)
	var outBuf bytes.Buffer
	var outMu sync.Mutex
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-procDone
	})
	addrCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var pending []byte
		announced := false
		for {
			n, err := stdout.Read(buf)
			if n > 0 {
				outMu.Lock()
				outBuf.Write(buf[:n])
				outMu.Unlock()
				if !announced {
					pending = append(pending, buf[:n]...)
					if m := regexp.MustCompile(`serving on ([^ ]+)`).FindSubmatch(pending); m != nil {
						addrCh <- string(m[1])
						announced = true
					}
				}
			}
			if err != nil {
				if !announced {
					close(addrCh)
				}
				procDone <- cmd.Wait()
				return
			}
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			outMu.Lock()
			out := outBuf.String()
			outMu.Unlock()
			t.Fatalf("server exited before announcing address:\n%s", out)
		}
		return "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("server never announced its address")
		return ""
	}
}

// TestBenchServeEndToEnd drives the real bench-serve binary against a real
// multi-tenant server and checks the BENCH_serve.json report and the SLO
// gate's exit codes.
func TestBenchServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	layoutDir := filepath.Join(dir, "layout")
	run(t, graphgenBin, "-kind", "rmat", "-scale", "10", "-edgefactor", "8", "-o", graphPath)
	run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", layoutDir, "-p", "4")

	tenantsPath := filepath.Join(dir, "tenants.json")
	tenants := `{"tenants":[
		{"name":"alpha","token":"tok-alpha"},
		{"name":"beta","token":"tok-beta"}
	]}`
	if err := os.WriteFile(tenantsPath, []byte(tenants), 0o644); err != nil {
		t.Fatal(err)
	}
	base := bootServe(t, layoutDir,
		"-workers", "2", "-queue", "32", "-mutable",
		"-tenants", tenantsPath, "-retain-jobs", "100")

	outPath := filepath.Join(dir, "BENCH_serve.json")
	stdout := run(t, graphsdBin, "bench-serve",
		"-url", base, "-graph", "g",
		"-tenants", tenantsPath,
		"-workers", "2", "-duration", "2s",
		"-vertices", "1024", "-max-iterations", "4",
		"-mutate-every", "7", "-mutate-batch", "8",
		"-out", outPath,
		"-min-jobs-per-sec", "1", "-min-share", "0.25")
	if !strings.Contains(stdout, "report written to") {
		t.Fatalf("bench-serve output missing report line:\n%s", stdout)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Jobs    int64   `json:"jobs_done"`
		JobsPS  float64 `json:"jobs_per_sec"`
		P50ms   float64 `json:"p50_ms"`
		P99ms   float64 `json:"p99_ms"`
		Errors  int64   `json:"errors"`
		Mutates int64   `json:"mutation_batches"`
		Tenants []struct {
			Name string  `json:"name"`
			Jobs int64   `json:"jobs_done"`
			Shr  float64 `json:"share"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Jobs == 0 || rep.JobsPS <= 0 || rep.P50ms <= 0 || rep.P99ms < rep.P50ms {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errored operations: %s", rep.Errors, data)
	}
	if rep.Mutates == 0 {
		t.Fatalf("mutation traffic never landed: %s", data)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("want 2 tenant reports: %s", data)
	}
	var shareSum float64
	for _, tr := range rep.Tenants {
		if tr.Jobs == 0 {
			t.Fatalf("tenant %s completed no jobs: %s", tr.Name, data)
		}
		shareSum += tr.Shr
	}
	if shareSum < 0.99 || shareSum > 1.01 {
		t.Fatalf("tenant shares sum to %.3f: %s", shareSum, data)
	}

	// The gate must bite: an absurd throughput floor fails the command.
	cmd := exec.Command(graphsdBin, "bench-serve",
		"-url", base, "-graph", "g", "-tenants", tenantsPath,
		"-duration", "1s", "-max-iterations", "2",
		"-min-jobs-per-sec", "1000000")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bench-serve passed an impossible SLO floor:\n%s", out)
	}
	if !strings.Contains(string(out), "SLO violation") {
		t.Fatalf("failure output does not name the violation:\n%s", out)
	}
}
