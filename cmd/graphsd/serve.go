package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/graphsd/graphsd/internal/server"
)

// graphFlags collects repeatable -graph name=dir flags.
type graphFlags []server.GraphConfig

func (g *graphFlags) String() string {
	parts := make([]string, len(*g))
	for i, gc := range *g {
		parts[i] = gc.Name + "=" + gc.Dir
	}
	return strings.Join(parts, ",")
}

func (g *graphFlags) Set(v string) error {
	name, dir, ok := strings.Cut(v, "=")
	if !ok || name == "" || dir == "" {
		return fmt.Errorf("want name=layoutdir, got %q", v)
	}
	*g = append(*g, server.GraphConfig{Name: name, Dir: dir})
	return nil
}

// cmdServe boots the resident job server and blocks until SIGINT/SIGTERM,
// then shuts down gracefully: stop accepting connections, cancel running
// jobs (the engine stops at the next sub-block), and drain within 5s.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8090", "address to listen on (host:port, port 0 picks a free port)")
	var graphs graphFlags
	fs.Var(&graphs, "graph", "graph to serve as name=layoutdir (repeatable)")
	workers := fs.Int("workers", 2, "jobs executed concurrently")
	queue := fs.Int("queue", 16, "admission queue depth")
	memBudget := fs.Int64("mem-budget", 0, "admission memory budget in bytes (0: unlimited)")
	cache := fs.Int64("cache", 0, "shared sub-block cache bytes per graph (0: half the edge data)")
	profile := fs.String("profile", "scaled-hdd", "disk model: hdd, scaled-hdd, ssd, pmem")
	retries := fs.Int("retries", 0, "retry transient read faults up to N times per graph device")
	sem := fs.Bool("sem", false, "run jobs through the semi-external-memory fast path (skip dead sub-blocks)")
	compressed := fs.Bool("compressed-cache", false, "store the shared sub-block cache delta-coded (decode per hit, ~2x capacity)")
	async := fs.Bool("async", false, "run monotonic algorithms (prd, cc, sssp, bfs) through the asynchronous priority scheduler")
	asyncEps := fs.Float64("async-eps", 0, "residual stop threshold for -async runs (0: run to frontier drain)")
	journal := fs.String("journal", "", "durability directory: job journal (WAL) and per-job engine checkpoints; a restarted server replays it and resumes unfinished jobs")
	jobTimeout := fs.Duration("job-timeout", 0, "server-side running-time bound for jobs that carry no timeout of their own (0: none)")
	jobRetries := fs.Int("job-retries", 0, "re-run a job up to N extra attempts after transient storage failures")
	ckEvery := fs.Int("checkpoint-every", 0, "engine checkpoint interval in iterations for -journal jobs (0: every iteration)")
	ckKeep := fs.Int("checkpoint-keep", 0, "retain the last N terminal jobs' checkpoint directories instead of pruning them")
	mutable := fs.Bool("mutable", false, "accept edge mutations on every served graph (POST /v1/graphs/{name}/edges; WAL-backed, snapshot-isolated reads)")
	memtableBytes := fs.Int64("memtable-bytes", 0, "mutation memtable bytes before sealing a delta layer (0: 1 MiB)")
	compactThreshold := fs.Int("compact-threshold", 0, "sealed delta layers that trigger background compaction (0: 4)")
	tenantsFile := fs.String("tenants", "", "multi-tenant mode: JSON tenants file (names, bearer tokens, weights, quotas); see server.LoadTenantsFile")
	retainJobs := fs.Int("retain-jobs", 0, "retain at most N terminal jobs (older ones are evicted, results included; 0: keep all)")
	fs.Parse(args)
	if len(graphs) == 0 {
		return fmt.Errorf("serve: at least one -graph name=layoutdir is required")
	}
	prof, err := profileByName(*profile)
	if err != nil {
		return err
	}
	for i := range graphs {
		graphs[i].Profile = prof
		graphs[i].CacheBytes = *cache
		graphs[i].Retries = *retries
		graphs[i].SEM = *sem
		graphs[i].Compressed = *compressed
		graphs[i].Async = *async
		graphs[i].AsyncEpsilon = *asyncEps
		graphs[i].Mutable = *mutable
		graphs[i].MemtableBytes = *memtableBytes
		graphs[i].CompactThreshold = *compactThreshold
	}

	cfg := server.Config{
		Graphs:          graphs,
		Workers:         *workers,
		QueueDepth:      *queue,
		MemBudget:       *memBudget,
		JournalDir:      *journal,
		JobTimeout:      *jobTimeout,
		JobRetries:      *jobRetries,
		CheckpointEvery: *ckEvery,
		CheckpointKeep:  *ckKeep,
		RetainJobs:      *retainJobs,
	}
	if *tenantsFile != "" {
		ts, err := server.LoadTenantsFile(*tenantsFile)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		cfg.Tenants = ts
		fmt.Printf("graphsd: multi-tenant mode: %d tenants\n", len(ts))
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *journal != "" {
		// The e2e harness parses this line to assert recovery accounting.
		rec := s.Recovery()
		fmt.Printf("graphsd: journal replayed: %d records; jobs recovered=%d requeued=%d expired=%d lost=%d\n",
			s.Journal().Stats().ReplayRecords, rec.Recovered, rec.Requeued, rec.Expired, rec.Lost)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// The e2e harness parses this line to find the bound port.
	fmt.Printf("graphsd: serving on %s (graphs: %s)\n", ln.Addr(), graphs.String())

	httpSrv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard
	fmt.Println("graphsd: signal received, shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "graphsd: http shutdown: %v\n", err)
	}
	if err := s.Close(shCtx); err != nil {
		return fmt.Errorf("serve: draining jobs: %w", err)
	}
	fmt.Println("graphsd: shutdown complete")
	return nil
}
