package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeEndToEnd is the serving smoke test: boot the real `graphsd
// serve` binary, submit two concurrent jobs over HTTP, read their results,
// scrape /metrics, then SIGTERM and require a clean exit within 5 seconds.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	layoutDir := filepath.Join(dir, "layout")
	run(t, graphgenBin, "-kind", "rmat", "-scale", "10", "-edgefactor", "8", "-o", graphPath)
	run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", layoutDir, "-p", "4")

	cmd := exec.Command(graphsdBin, "serve",
		"-listen", "127.0.0.1:0",
		"-graph", "rmat10="+layoutDir,
		"-workers", "2", "-queue", "8", "-retries", "3")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Reap the process on any exit path so a failed test doesn't leak it.
	procDone := make(chan error, 1)
	var outBuf bytes.Buffer
	var outMu sync.Mutex
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-procDone
	})

	// First line announces the bound address; keep draining after it so
	// the child never blocks on a full pipe.
	addrCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var pending []byte
		announced := false
		for {
			n, err := stdout.Read(buf)
			if n > 0 {
				outMu.Lock()
				outBuf.Write(buf[:n])
				outMu.Unlock()
				if !announced {
					pending = append(pending, buf[:n]...)
					if m := regexp.MustCompile(`serving on ([^ ]+)`).FindSubmatch(pending); m != nil {
						addrCh <- string(m[1])
						announced = true
					}
				}
			}
			if err != nil {
				if !announced {
					close(addrCh)
				}
				procDone <- cmd.Wait()
				return
			}
		}
	}()

	var base string
	select {
	case addr, ok := <-addrCh:
		if !ok {
			outMu.Lock()
			out := outBuf.String()
			outMu.Unlock()
			t.Fatalf("server exited before announcing address:\n%s", out)
		}
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("server never announced its address")
	}

	// Liveness.
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// Two concurrent jobs.
	submit := func(alg string, source uint32) string {
		body := fmt.Sprintf(`{"graph":"rmat10","algorithm":%q,"source":%d}`, alg, source)
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit %s: HTTP %d: %s", alg, resp.StatusCode, b)
		}
		var st struct {
			ID string `json:"id"`
		}
		json.NewDecoder(resp.Body).Decode(&st)
		if st.ID == "" {
			t.Fatalf("submit %s: empty job id", alg)
		}
		return st.ID
	}
	ids := []string{submit("pr", 0), submit("bfs", 1)}

	for _, id := range ids {
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if st.State == "done" {
				break
			}
			if st.State == "failed" || st.State == "cancelled" {
				t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, st.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id + "/result?top=3")
		if err != nil {
			t.Fatal(err)
		}
		// Value is a RawMessage: bfs renders unreachable distances as
		// the JSON string "Infinity", not a number.
		var res struct {
			Top []struct {
				Vertex uint32          `json:"vertex"`
				Value  json.RawMessage `json:"value"`
			} `json:"top"`
		}
		json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if resp.StatusCode != 200 || len(res.Top) != 3 {
			t.Fatalf("result %s: HTTP %d, %d rows", id, resp.StatusCode, len(res.Top))
		}
	}

	// Scrape /metrics and check the aggregated counter families are there.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metricsBody := string(mb)
	for _, want := range []string{
		`graphsd_jobs_total{state="done"} 2`,
		`graphsd_device_read_bytes_total{graph="rmat10"}`,
		`graphsd_device_retries_total{graph="rmat10"}`,
		`graphsd_shared_cache_hits_total{graph="rmat10"}`,
		`graphsd_pipeline_fallbacks_total{graph="rmat10"}`,
		"graphsd_uptime_seconds",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Graceful shutdown: SIGTERM, clean exit within 5s.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-procDone:
		outMu.Lock()
		out := outBuf.String()
		outMu.Unlock()
		if err != nil {
			t.Fatalf("server exited with error: %v\n%s", err, out)
		}
		if !strings.Contains(out, "shutdown complete") {
			t.Fatalf("no clean shutdown message:\n%s", out)
		}
		procDone <- nil // let the cleanup's receive proceed
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit within 5s of SIGTERM")
	}
}
