// Command graphsd is the CLI front-end of the GraphSD out-of-core graph
// processing system.
//
// Subcommands:
//
//	graphsd preprocess -graph g.bin -layout DIR [-p N] [-system graphsd|husgraph|lumos] [-external]
//	graphsd run        -layout DIR -algorithm pr|prd|cc|sssp|bfs|widestpath|reach [-source V] [flags]
//	graphsd compare    -graph g.bin -algorithm bfs [-p N]   (all systems, one table)
//	graphsd verify     -graph g.bin -layout DIR -algorithm cc (engine vs in-memory oracle)
//	graphsd stats      -layout DIR                          (layout inventory)
//	graphsd trace      -file run.trace                      (I/O trace summary)
//	graphsd measure    -dir DIR                             (fio-like profile probe)
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"github.com/graphsd/graphsd/internal/algorithms"
	"github.com/graphsd/graphsd/internal/baseline"
	"github.com/graphsd/graphsd/internal/core"
	"github.com/graphsd/graphsd/internal/delta"
	"github.com/graphsd/graphsd/internal/graph"
	"github.com/graphsd/graphsd/internal/iotrace"
	"github.com/graphsd/graphsd/internal/metrics"
	"github.com/graphsd/graphsd/internal/partition"
	"github.com/graphsd/graphsd/internal/storage"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "preprocess":
		err = cmdPreprocess(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "bench-serve":
		err = cmdBenchServe(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "measure":
		err = cmdMeasure(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "graphsd: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphsd: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: graphsd <subcommand> [flags]

subcommands:
  preprocess  partition a graph into an on-disk layout
  run         execute an algorithm over a preprocessed layout
  serve       run the resident job server with an HTTP API
  ingest      stream edge mutations into a running 'serve -mutable' server
  bench-serve closed-loop load generator against a running server (SLO report)
  compare     run one algorithm under every system and print a comparison
  verify      check an out-of-core run against the in-memory BSP oracle
  stats       describe a preprocessed layout
  trace       summarize a JSONL I/O trace produced by 'run -iotrace'
  measure     probe the local filesystem's bandwidth profile

run 'graphsd <subcommand> -h' for flags.`)
	os.Exit(2)
}

func profileByName(name string) (storage.Profile, error) {
	switch name {
	case "hdd":
		return storage.HDD, nil
	case "scaled-hdd":
		return storage.ScaledHDD, nil
	case "ssd":
		return storage.SSD, nil
	case "pmem":
		return storage.PMem, nil
	default:
		return storage.Profile{}, fmt.Errorf("unknown profile %q (have hdd, scaled-hdd, ssd, pmem)", name)
	}
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Try binary first; fall back to text edge list.
	if g, err := graph.ReadBinary(f); err == nil {
		return g, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	return graph.ReadEdgeList(f, false)
}

func cmdPreprocess(args []string) error {
	fs := flag.NewFlagSet("preprocess", flag.ExitOnError)
	graphPath := fs.String("graph", "", "input graph (binary or text edge list)")
	layoutDir := fs.String("layout", "", "output layout directory")
	p := fs.Int("p", 0, "number of vertex intervals (0: auto from -membudget)")
	memBudget := fs.Int64("membudget", 0, "memory budget in bytes (default: 5% of edge data, as in the paper)")
	system := fs.String("system", "graphsd", "layout format: graphsd, husgraph, lumos")
	profile := fs.String("profile", "scaled-hdd", "disk model: hdd, scaled-hdd, ssd, pmem")
	external := fs.Bool("external", false, "use the bounded-memory external preprocessor (graphsd layouts only)")
	codecName := fs.String("codec", "raw", "sub-block payload encoding: raw or delta (graphsd layouts only)")
	fs.Parse(args)
	if *graphPath == "" || *layoutDir == "" {
		return fmt.Errorf("preprocess: -graph and -layout are required")
	}
	prof, err := profileByName(*profile)
	if err != nil {
		return err
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return fmt.Errorf("loading graph: %w", err)
	}
	dev, err := storage.OpenDevice(*layoutDir, prof)
	if err != nil {
		return err
	}
	intervals := *p
	if intervals == 0 {
		budget := *memBudget
		if budget == 0 {
			budget = g.Bytes() / 20
		}
		intervals = partition.ChooseP(g.Bytes(), budget, 64)
	}
	codec, err := graph.ParseCodec(*codecName)
	if err != nil {
		return err
	}
	var build func(*storage.Device, *graph.Graph, int, ...partition.BuildOption) (*partition.Layout, error)
	switch {
	case *external && *system == "graphsd":
		build = func(dev *storage.Device, g *graph.Graph, p int, opts ...partition.BuildOption) (*partition.Layout, error) {
			return partition.BuildExternal(dev, graph.NewSliceStream(g.Edges), g.NumVertices, g.Weighted, p, opts...)
		}
	case *external:
		return fmt.Errorf("-external is only implemented for the graphsd layout")
	case *system == "graphsd":
		build = partition.Build
	case *system == "husgraph":
		build = partition.BuildHUSGraph
	case *system == "lumos":
		build = partition.BuildLumos
	default:
		return fmt.Errorf("unknown system %q", *system)
	}
	start := time.Now()
	l, err := build(dev, g, intervals, partition.WithCodec(codec))
	if err != nil {
		return err
	}
	s := dev.Stats()
	fmt.Printf("layout %s: system=%s P=%d vertices=%d edges=%d codec=%s\n",
		*layoutDir, l.Meta.System, l.Meta.P, l.Meta.NumVertices, l.Meta.NumEdges, l.Meta.BlockCodec())
	if disk := l.Meta.EdgeDiskBytesTotal(); disk > 0 && disk < l.Meta.EdgeBytesTotal() {
		fmt.Printf("compression: %s decoded -> %s on disk (%.2fx)\n",
			storage.FormatBytes(l.Meta.EdgeBytesTotal()), storage.FormatBytes(disk),
			float64(l.Meta.EdgeBytesTotal())/float64(disk))
	}
	fmt.Printf("preprocessing: wall=%v cpu=%v written=%s simulated-io=%v\n",
		time.Since(start).Round(time.Millisecond), l.PrepCPU.Round(time.Millisecond),
		storage.FormatBytes(s.WriteBytes()), s.TotalTime().Round(time.Millisecond))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	layoutDir := fs.String("layout", "", "preprocessed layout directory")
	alg := fs.String("algorithm", "", "algorithm: pr, prd, cc, sssp, bfs")
	source := fs.Uint("source", 0, "source vertex for sssp/bfs")
	iters := fs.Int("iterations", 0, "override the iteration bound")
	profile := fs.String("profile", "scaled-hdd", "disk model: hdd, scaled-hdd, ssd, pmem")
	noCross := fs.Bool("no-cross-iteration", false, "disable cross-iteration updates (ablation b1)")
	force := fs.String("force-model", "", "pin the I/O model: full (b3) or on-demand (b4)")
	bufBytes := fs.Int64("buffer", -1, "secondary sub-block buffer bytes (-1: auto, 0: disabled)")
	top := fs.Int("top", 10, "print the top-N vertices by output value")
	trace := fs.Bool("trace", false, "print the per-iteration scheduler trace")
	tracePath := fs.String("iotrace", "", "record a JSONL I/O trace to this file")
	prefetchDepth := fs.Int("prefetch-depth", 0, "I/O pipeline read-ahead depth (0: default, negative: disable)")
	prefetchBytes := fs.Int64("prefetch-bytes", 0, "I/O pipeline window byte budget (0: default)")
	ckDir := fs.String("checkpoint", "", "checkpoint directory (enables crash-safe iteration checkpoints)")
	ckEvery := fs.Int("checkpoint-every", 4, "iterations between checkpoints (with -checkpoint)")
	resume := fs.Bool("resume", false, "resume from the checkpoint in -checkpoint, if present")
	retries := fs.Int("retries", 0, "retry transient read faults up to N times with exponential backoff")
	sem := fs.Bool("sem", false, "semi-external-memory fast path: skip dead sub-blocks, compress the buffer tier")
	async := fs.Bool("async", false, "asynchronous execution: priority scheduling over sub-block rows (monotonic algorithms: prd, cc, sssp, bfs)")
	asyncEps := fs.Float64("async-eps", 0, "stop an -async run once total pending residual falls to this (0: run to frontier drain)")
	asyncSeed := fs.Uint64("async-seed", 0, "tie-break seed for the -async scheduler (fixed seed: reproducible schedule)")
	progress := fs.Int("progress", 0, "print a one-line frontier/residual summary every N iterations (0: off)")
	fs.Parse(args)
	if *layoutDir == "" || *alg == "" {
		return fmt.Errorf("run: -layout and -algorithm are required")
	}
	prof, err := profileByName(*profile)
	if err != nil {
		return err
	}
	dev, err := storage.OpenDevice(*layoutDir, prof)
	if err != nil {
		return err
	}
	l, err := partition.Load(dev)
	if err != nil {
		return err
	}
	prog, err := algorithms.ByName(*alg, graph.VertexID(*source))
	if err != nil {
		return err
	}
	if *resume && *ckDir == "" {
		return fmt.Errorf("run: -resume requires -checkpoint")
	}
	if *ckDir != "" && l.Meta.System != "graphsd" {
		return fmt.Errorf("run: -checkpoint is only supported for graphsd layouts (this one is %q)", l.Meta.System)
	}
	if *ckDir != "" && *ckEvery <= 0 {
		return fmt.Errorf("run: -checkpoint-every must be positive")
	}
	if *retries > 0 {
		pol := storage.DefaultRetryPolicy
		pol.MaxRetries = *retries
		dev.SetRetryPolicy(pol)
	}

	var rec *iotrace.Recorder
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		rec = iotrace.NewRecorder(tf)
		rec.Attach(dev)
		defer func() {
			dev.SetTracer(nil)
			if err := rec.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "graphsd: flushing trace: %v\n", err)
			}
			tf.Close()
			fmt.Printf("I/O trace (%d events) written to %s\n", rec.Events(), *tracePath)
		}()
	}

	opts := core.Options{MaxIterations: *iters}
	switch {
	case *bufBytes < 0:
		opts.DefaultBuffer = true
	default:
		opts.BufferBytes = *bufBytes
	}
	opts.DisableCrossIteration = *noCross
	opts.SEM = *sem
	opts.Async = *async
	opts.AsyncEpsilon = *asyncEps
	opts.AsyncSeed = *asyncSeed
	opts.PrefetchDepth = *prefetchDepth
	opts.PrefetchBytes = *prefetchBytes
	if (*asyncEps != 0 || *asyncSeed != 0) && !*async {
		return fmt.Errorf("run: -async-eps and -async-seed require -async")
	}
	if *async && l.Meta.System != "graphsd" {
		return fmt.Errorf("run: -async is only supported for graphsd layouts (this one is %q)", l.Meta.System)
	}
	if *progress > 0 {
		every := *progress
		start := time.Now()
		opts.OnIteration = func(st core.IterStat) {
			if (st.Index+1)%every != 0 {
				return
			}
			line := fmt.Sprintf("[%7.1fs] iter %4d path=%-9s active=%d", time.Since(start).Seconds(), st.Index, st.Path, st.Active)
			if *async {
				line += fmt.Sprintf(" residual=%.3e blocks=%d", st.Residual, st.Blocks)
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if *ckDir != "" {
		opts.Checkpoint = core.CheckpointOptions{Every: *ckEvery, Dir: *ckDir, Resume: *resume}
	}
	switch *force {
	case "":
	case "full":
		opts.ForceModel = core.ForceFull
	case "on-demand":
		opts.ForceModel = core.ForceOnDemand
	default:
		return fmt.Errorf("unknown -force-model %q", *force)
	}

	// Ctrl-C cancels the engine cleanly between sub-blocks, so the
	// deferred trace-file flush above still runs and the trace is whole.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var res *core.Result
	switch l.Meta.System {
	case "graphsd":
		res, err = core.RunContext(ctx, l, prog, opts)
	case "husgraph":
		res, err = baseline.RunHUSGraph(l, prog, baseline.Options{MaxIterations: *iters})
	case "lumos":
		res, err = baseline.RunLumos(l, prog, baseline.Options{MaxIterations: *iters})
	default:
		return fmt.Errorf("layout has unknown system %q", l.Meta.System)
	}
	if err != nil {
		return err
	}

	fmt.Println(res)
	fmt.Printf("I/O: %s\n", res.IO)
	if res.Codec != "" && res.Codec != "raw" {
		fmt.Printf("codec: %s, compression=%.2fx, decode=%v (overlapped with compute)\n",
			res.Codec, res.CompressRatio, res.DecodeTime.Round(time.Microsecond))
	}
	if pl := res.Pipeline; pl.Blocks > 0 {
		fmt.Printf("pipeline: %d blocks (%s) prefetched, stall=%v overlap=%v\n",
			pl.Blocks, storage.FormatBytes(pl.Bytes),
			pl.Stall.Round(time.Microsecond), pl.Overlap.Round(time.Microsecond))
	}
	if res.Resumed {
		fmt.Printf("resumed from checkpoint at iteration %d\n", res.ResumedFrom)
	}
	if res.Checkpoints > 0 {
		fmt.Printf("checkpoints: %d written to %s\n", res.Checkpoints, *ckDir)
	}
	if res.IO.Retries > 0 || res.Pipeline.Fallbacks > 0 {
		fmt.Printf("fault recovery: %d retried reads, %d pipeline fallbacks to synchronous loads\n",
			res.IO.Retries, res.Pipeline.Fallbacks)
	}
	if s := res.SEM; s.Enabled {
		line := fmt.Sprintf("sem: %d dead sub-blocks skipped (%s never read)",
			s.BlocksSkipped, storage.FormatBytes(s.BytesSkipped))
		if s.CompressedBytes > 0 {
			line += fmt.Sprintf(", compressed tier %d hits decode=%v effective-capacity=%.2fx",
				s.CompressedHits, s.DecodeTime.Round(time.Microsecond), s.EffectiveCapacityRatio())
		}
		fmt.Println(line)
	}
	if a := res.Async; a.Enabled {
		fmt.Printf("async: %d steps (%d selective), %d sub-blocks scheduled, %d reactivations, final residual %.3e\n",
			a.Steps, a.SelectiveSteps, a.BlocksScheduled, a.Reactivations, a.FinalResidual)
	}
	if acc := res.SchedAccuracy; acc.Observed > 0 {
		fmt.Printf("scheduler accuracy: %d observed iterations, mispredict mean %.1f%% last %.1f%%, corrections full=%.2f on-demand=%.2f\n",
			acc.Observed, 100*acc.MeanMispredict, 100*acc.LastMispredict, acc.CorrFull, acc.CorrOnDemand)
	}
	if rec != nil {
		// Fold the calibration loop's per-iteration accuracy into the trace
		// as synthetic "sched" events, so one file carries both the device
		// operations and the predictions made against them.
		for _, st := range res.IterStats {
			if st.Predicted > 0 {
				model := "full"
				if st.Path == "sciu" {
					model = "on-demand"
				}
				rec.RecordSched(st.Index, model, st.Predicted, st.IOTime, st.Mispredict)
			}
		}
	}
	if *trace {
		tr := metrics.NewTable("per-iteration trace", "iter", "path", "active", "bytes", "skipped", "io time", "compute", "decode", "stall", "overlap", "predicted", "mispredict")
		for _, st := range res.IterStats {
			pred, mis := "-", "-"
			if st.Predicted > 0 {
				pred = metrics.Dur(st.Predicted)
				mis = fmt.Sprintf("%.1f%%", 100*st.Mispredict)
			}
			skipped := "-"
			if st.Pipeline.Skipped > 0 {
				skipped = fmt.Sprintf("%d (%s)", st.Pipeline.Skipped, storage.FormatBytes(st.Pipeline.SkippedBytes))
			}
			tr.AddRow(fmt.Sprint(st.Index), st.Path, fmt.Sprint(st.Active),
				storage.FormatBytes(st.IO.TotalBytes()), skipped, metrics.Dur(st.IOTime), metrics.Dur(st.ComputeTime),
				metrics.DurZ(st.DecodeTime), metrics.DurZ(st.Pipeline.Stall), metrics.DurZ(st.Pipeline.Overlap),
				pred, mis)
		}
		if err := tr.Render(os.Stdout); err != nil {
			return err
		}
	}
	printTop(res.Outputs, *top)
	return nil
}

func printTop(values []float64, n int) {
	if n <= 0 {
		return
	}
	type vv struct {
		v   int
		val float64
	}
	all := make([]vv, len(values))
	for i, v := range values {
		all[i] = vv{i, v}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].val > all[b].val })
	if n > len(all) {
		n = len(all)
	}
	fmt.Printf("top %d vertices by output value:\n", n)
	for _, e := range all[:n] {
		fmt.Printf("  v%-8d %g\n", e.v, e.val)
	}
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	graphPath := fs.String("graph", "", "input graph (binary or text edge list)")
	alg := fs.String("algorithm", "bfs", "algorithm: pr, prd, cc, sssp, bfs")
	source := fs.Uint("source", 0, "source vertex for sssp/bfs")
	p := fs.Int("p", 8, "number of vertex intervals")
	profile := fs.String("profile", "scaled-hdd", "disk model")
	workdir := fs.String("workdir", "", "scratch dir (default: temp)")
	fs.Parse(args)
	if *graphPath == "" {
		return fmt.Errorf("compare: -graph is required")
	}
	prof, err := profileByName(*profile)
	if err != nil {
		return err
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	dir := *workdir
	if dir == "" {
		dir, err = os.MkdirTemp("", "graphsd-compare-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}

	mkProg := func() (core.Program, error) { return algorithms.ByName(*alg, graph.VertexID(*source)) }
	probe, err := mkProg()
	if err != nil {
		return err
	}
	if probe.Weighted() && !g.Weighted {
		return fmt.Errorf("%s needs a weighted graph (graphgen -weighted)", *alg)
	}

	t := metrics.NewTable(fmt.Sprintf("system comparison: %s on %s (P=%d)", *alg, *graphPath, *p),
		"system", "exec time", "io time", "compute", "traffic", "iterations")
	addRow := func(name string, res *core.Result) {
		t.AddRow(name, metrics.Dur(res.ExecTime()), metrics.Dur(res.IOTime()),
			metrics.Dur(res.ComputeTime), storage.FormatBytes(res.IO.TotalBytes()),
			fmt.Sprint(res.Iterations))
	}

	gsdDev, err := storage.OpenDevice(dir+"/graphsd", prof)
	if err != nil {
		return err
	}
	gsdL, err := partition.Build(gsdDev, g, *p)
	if err != nil {
		return err
	}
	prog, _ := mkProg()
	res, err := core.Run(gsdL, prog, core.Options{DefaultBuffer: true})
	if err != nil {
		return err
	}
	addRow("graphsd", res)

	husDev, err := storage.OpenDevice(dir+"/husgraph", prof)
	if err != nil {
		return err
	}
	husL, err := partition.BuildHUSGraph(husDev, g, *p)
	if err != nil {
		return err
	}
	prog, _ = mkProg()
	res, err = baseline.RunHUSGraph(husL, prog, baseline.Options{})
	if err != nil {
		return err
	}
	addRow("husgraph", res)

	lumDev, err := storage.OpenDevice(dir+"/lumos", prof)
	if err != nil {
		return err
	}
	lumL, err := partition.BuildLumos(lumDev, g, *p)
	if err != nil {
		return err
	}
	prog, _ = mkProg()
	res, err = baseline.RunLumos(lumL, prog, baseline.Options{})
	if err != nil {
		return err
	}
	addRow("lumos", res)

	prog, _ = mkProg()
	res, err = baseline.RunGridGraph(lumL, prog, baseline.Options{})
	if err != nil {
		return err
	}
	addRow("gridgraph", res)

	xDev, err := storage.OpenDevice(dir+"/xstream", prof)
	if err != nil {
		return err
	}
	xL, err := baseline.BuildXStream(xDev, g, *p)
	if err != nil {
		return err
	}
	prog, _ = mkProg()
	res, err = baseline.RunXStream(xL, prog, baseline.Options{})
	if err != nil {
		return err
	}
	addRow("xstream", res)

	return t.Render(os.Stdout)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	graphPath := fs.String("graph", "", "original input graph (binary or text edge list)")
	layoutDir := fs.String("layout", "", "preprocessed graphsd layout")
	alg := fs.String("algorithm", "bfs", "algorithm: pr, prd, cc, sssp, bfs, widestpath, reach")
	source := fs.Uint("source", 0, "source vertex for traversal algorithms")
	tol := fs.Float64("tolerance", 1e-9, "relative tolerance for sum-based algorithms")
	fs.Parse(args)
	if *graphPath == "" || *layoutDir == "" {
		return fmt.Errorf("verify: -graph and -layout are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	dev, err := storage.OpenDevice(*layoutDir, storage.ScaledHDD)
	if err != nil {
		return err
	}
	l, err := partition.Load(dev)
	if err != nil {
		return err
	}
	if l.Meta.NumVertices != g.NumVertices || int(l.Meta.NumEdges) != g.NumEdges() {
		return fmt.Errorf("layout (%d vertices, %d edges) does not match graph (%d, %d)",
			l.Meta.NumVertices, l.Meta.NumEdges, g.NumVertices, g.NumEdges())
	}
	prog, err := algorithms.ByName(*alg, graph.VertexID(*source))
	if err != nil {
		return err
	}
	oracleProg, err := algorithms.ByName(*alg, graph.VertexID(*source))
	if err != nil {
		return err
	}
	res, err := core.Run(l, prog, core.Options{DefaultBuffer: true})
	if err != nil {
		return err
	}
	want, iters := core.RunReference(g, oracleProg, 0)
	mismatches := 0
	worst := 0.0
	for v := range want {
		d := relDiff(res.Outputs[v], want[v])
		if d > worst {
			worst = d
		}
		if d > *tol {
			mismatches++
			if mismatches <= 5 {
				fmt.Printf("MISMATCH vertex %d: engine %v, oracle %v\n", v, res.Outputs[v], want[v])
			}
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("%d/%d vertices differ beyond tolerance %g", mismatches, len(want), *tol)
	}
	fmt.Printf("OK: %s over %d vertices matches the in-memory oracle (engine %d iters, oracle %d; worst rel-diff %.2e)\n",
		*alg, len(want), res.Iterations, iters, worst)
	return nil
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return d
	}
	return d / m
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	layoutDir := fs.String("layout", "", "layout directory")
	fs.Parse(args)
	if *layoutDir == "" {
		return fmt.Errorf("stats: -layout is required")
	}
	dev, err := storage.OpenDevice(*layoutDir, storage.ScaledHDD)
	if err != nil {
		return err
	}
	l, err := partition.Load(dev)
	if err != nil {
		return err
	}
	m := l.Meta
	fmt.Printf("system:    %s\nvertices:  %d\nedges:     %d\nP:         %d\nweighted:  %t\nedge data: %s\n",
		m.System, m.NumVertices, m.NumEdges, m.P, m.Weighted, storage.FormatBytes(m.EdgeBytesTotal()))
	fmt.Printf("codec:     %s\n", m.BlockCodec())
	if disk := m.EdgeDiskBytesTotal(); disk != m.EdgeBytesTotal() {
		fmt.Printf("on disk:   %s (%.2fx compression)\n", storage.FormatBytes(disk),
			float64(m.EdgeBytesTotal())/float64(disk))
	}
	if m.System == "graphsd" || m.System == "lumos" {
		var diag, upper, lower int64
		for i := 0; i < m.P; i++ {
			for j := 0; j < m.P; j++ {
				switch {
				case i == j:
					diag += m.SubBlockEdges(i, j)
				case i < j:
					upper += m.SubBlockEdges(i, j)
				default:
					lower += m.SubBlockEdges(i, j)
				}
			}
		}
		fmt.Printf("grid:      diagonal %d edges, upper %d, lower (secondary) %d\n", diag, upper, lower)
	}
	// Mutable-graph state: layout generation, sealed delta layers awaiting
	// compaction, and unsealed mutations still in the WAL (what a restarted
	// server would replay into its memtable).
	if m.System == "graphsd" && (m.Generation > 0 || m.MutationsTotal > 0 || len(m.DeltaLayers) > 0) {
		fmt.Printf("generation: %d (compactions over the layout's lifetime)\n", m.Generation)
		fmt.Printf("delta:      %d sealed layers, %s pending compaction\n",
			len(m.DeltaLayers), storage.FormatBytes(m.DeltaDiskBytes()))
		// The manifest's MutationsTotal covers sealed mutations only; the
		// store's view folds in whatever the mutation WAL replays into the
		// memtable.
		if s, err := delta.Open(dev, delta.Options{}); err == nil {
			st := s.Stats()
			fmt.Printf("mutations:  %d applied over the layout's lifetime\n", st.MutationsTotal)
			fmt.Printf("memtable:   %d keys, ~%s unsealed (replayed from the mutation WAL)\n",
				st.MemtableKeys, storage.FormatBytes(st.MemtableBytes))
			s.Close()
		} else {
			fmt.Printf("mutations:  %d sealed (mutation WAL unavailable: %v)\n", m.MutationsTotal, err)
		}
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	file := fs.String("file", "", "JSONL trace file from 'run -iotrace'")
	top := fs.Int("top", 10, "show the N busiest files")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("trace: -file is required")
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := iotrace.Analyze(f, *top)
	if err != nil {
		return err
	}
	return sum.Render(os.Stdout)
}

func cmdMeasure(args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory to probe")
	size := fs.Int("size", 64<<20, "sample size in bytes")
	fs.Parse(args)
	p, err := storage.MeasureProfile(*dir, *size)
	if err != nil {
		return err
	}
	fmt.Printf("measured profile for %s:\n", *dir)
	fmt.Printf("  seq read:   %.1f MB/s\n  seq write:  %.1f MB/s\n  rand read:  %.1f MB/s\n  seek:       %v\n",
		p.SeqReadBps/1e6, p.SeqWriteBps/1e6, p.RandReadBps/1e6, p.SeekLatency)
	return nil
}
