package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end CLI tests: build the real binaries once and drive the
// documented workflows. These are the closest thing to a user session the
// test suite has.

var (
	graphsdBin  string
	graphgenBin string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "graphsd-e2e-*")
	if err != nil {
		panic(err)
	}
	graphsdBin = filepath.Join(dir, "graphsd")
	graphgenBin = filepath.Join(dir, "graphgen")
	for bin, pkg := range map[string]string{
		graphsdBin:  "github.com/graphsd/graphsd/cmd/graphsd",
		graphgenBin: "github.com/graphsd/graphsd/cmd/graphgen",
	} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			panic(string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func runExpectFail(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", filepath.Base(bin), args, out)
	}
	return string(out)
}

func TestEndToEndWorkflow(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	layoutDir := filepath.Join(dir, "layout")

	// Generate.
	out := run(t, graphgenBin, "-kind", "rmat", "-scale", "10", "-edgefactor", "8", "-o", graphPath)
	if !strings.Contains(out, "1024 vertices") {
		t.Fatalf("graphgen output: %s", out)
	}

	// Preprocess.
	out = run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", layoutDir, "-p", "4")
	if !strings.Contains(out, "system=graphsd P=4") {
		t.Fatalf("preprocess output: %s", out)
	}

	// Run with scheduler trace and an I/O trace.
	tracePath := filepath.Join(dir, "run.trace")
	out = run(t, graphsdBin, "run", "-layout", layoutDir, "-algorithm", "cc",
		"-trace", "-top", "3", "-iotrace", tracePath)
	if !strings.Contains(out, "converged=true") || !strings.Contains(out, "per-iteration trace") {
		t.Fatalf("run output: %s", out)
	}

	// Analyze the trace.
	out = run(t, graphsdBin, "trace", "-file", tracePath, "-top", "2")
	if !strings.Contains(out, "sequential ops") {
		t.Fatalf("trace output: %s", out)
	}

	// Verify against the oracle.
	out = run(t, graphsdBin, "verify", "-graph", graphPath, "-layout", layoutDir, "-algorithm", "cc")
	if !strings.Contains(out, "OK:") {
		t.Fatalf("verify output: %s", out)
	}

	// Layout stats.
	out = run(t, graphsdBin, "stats", "-layout", layoutDir)
	if !strings.Contains(out, "vertices:  1024") {
		t.Fatalf("stats output: %s", out)
	}
}

func TestEndToEndExternalPreprocessAndCompare(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	run(t, graphgenBin, "-kind", "ba", "-n", "800", "-m", "2400", "-o", graphPath)

	layoutDir := filepath.Join(dir, "ext-layout")
	out := run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", layoutDir, "-p", "3", "-external")
	if !strings.Contains(out, "system=graphsd P=3") {
		t.Fatalf("external preprocess output: %s", out)
	}
	out = run(t, graphsdBin, "verify", "-graph", graphPath, "-layout", layoutDir, "-algorithm", "bfs", "-source", "799")
	if !strings.Contains(out, "OK:") {
		t.Fatalf("verify output: %s", out)
	}

	out = run(t, graphsdBin, "compare", "-graph", graphPath, "-algorithm", "cc", "-p", "3")
	for _, sys := range []string{"graphsd", "husgraph", "lumos", "gridgraph"} {
		if !strings.Contains(out, sys) {
			t.Fatalf("compare output missing %s:\n%s", sys, out)
		}
	}
}

func TestEndToEndWeightedSSSP(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "w.bin")
	run(t, graphgenBin, "-kind", "weblike", "-n", "500", "-m", "3000", "-weighted", "-o", graphPath)
	layoutDir := filepath.Join(dir, "layout")
	run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", layoutDir, "-p", "3")
	out := run(t, graphsdBin, "run", "-layout", layoutDir, "-algorithm", "sssp", "-source", "0", "-top", "1")
	if !strings.Contains(out, "sssp:") {
		t.Fatalf("sssp output: %s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	// Missing required flags.
	runExpectFail(t, graphsdBin, "run", "-layout", dir)
	runExpectFail(t, graphsdBin, "preprocess", "-graph", "nope")
	// Unknown subcommand exits non-zero.
	runExpectFail(t, graphsdBin, "frobnicate")
	// Unknown algorithm.
	graphPath := filepath.Join(dir, "g.bin")
	run(t, graphgenBin, "-kind", "chain", "-n", "10", "-o", graphPath)
	layoutDir := filepath.Join(dir, "layout")
	run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", layoutDir, "-p", "2")
	out := runExpectFail(t, graphsdBin, "run", "-layout", layoutDir, "-algorithm", "nope")
	if !strings.Contains(out, "unknown algorithm") {
		t.Fatalf("error output: %s", out)
	}
	// Weighted algorithm on unweighted layout.
	out = runExpectFail(t, graphsdBin, "run", "-layout", layoutDir, "-algorithm", "sssp")
	if !strings.Contains(out, "weights") {
		t.Fatalf("error output: %s", out)
	}
}

// TestEndToEndDeltaCodec: the delta-compressed workflow — generate a delta
// binary, preprocess with -codec delta, run, verify against the oracle, and
// confirm stats reports the compression.
func TestEndToEndDeltaCodec(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	out := run(t, graphgenBin, "-kind", "rmat", "-scale", "10", "-edgefactor", "8",
		"-codec", "delta", "-o", graphPath)
	if !strings.Contains(out, "1024 vertices") {
		t.Fatalf("graphgen output: %s", out)
	}

	layoutDir := filepath.Join(dir, "layout")
	out = run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", layoutDir,
		"-p", "4", "-codec", "delta")
	if !strings.Contains(out, "codec=delta") || !strings.Contains(out, "compression:") {
		t.Fatalf("preprocess output: %s", out)
	}

	out = run(t, graphsdBin, "run", "-layout", layoutDir, "-algorithm", "cc", "-trace", "-top", "3")
	if !strings.Contains(out, "converged=true") || !strings.Contains(out, "codec: delta") {
		t.Fatalf("run output: %s", out)
	}
	if !strings.Contains(out, "decode") {
		t.Fatalf("trace missing decode column: %s", out)
	}

	out = run(t, graphsdBin, "verify", "-graph", graphPath, "-layout", layoutDir, "-algorithm", "cc")
	if !strings.Contains(out, "OK:") {
		t.Fatalf("verify output: %s", out)
	}

	out = run(t, graphsdBin, "stats", "-layout", layoutDir)
	if !strings.Contains(out, "codec:     delta") || !strings.Contains(out, "on disk:") {
		t.Fatalf("stats output: %s", out)
	}

	// External preprocessing accepts the codec too.
	extDir := filepath.Join(dir, "ext")
	out = run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", extDir,
		"-p", "4", "-codec", "delta", "-external")
	if !strings.Contains(out, "codec=delta") {
		t.Fatalf("external preprocess output: %s", out)
	}

	// Non-grid layouts reject the codec.
	out = runExpectFail(t, graphsdBin, "preprocess", "-graph", graphPath,
		"-layout", filepath.Join(dir, "hus"), "-p", "4", "-system", "husgraph", "-codec", "delta")
	if !strings.Contains(out, "codec") {
		t.Fatalf("husgraph delta error output: %s", out)
	}
}

// TestEndToEndCheckpointResume: the fault-tolerance workflow — run with
// crash-safe checkpoints enabled, then resume from the final checkpoint and
// reach the same converged state.
func TestEndToEndCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	run(t, graphgenBin, "-kind", "rmat", "-scale", "9", "-edgefactor", "8", "-o", graphPath)
	layoutDir := filepath.Join(dir, "layout")
	run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", layoutDir, "-p", "4")

	ckDir := filepath.Join(dir, "ck")
	out := run(t, graphsdBin, "run", "-layout", layoutDir, "-algorithm", "pr",
		"-iterations", "6", "-checkpoint", ckDir, "-checkpoint-every", "2", "-retries", "3", "-top", "1")
	if !strings.Contains(out, "checkpoints: 3 written") {
		t.Fatalf("checkpointed run output: %s", out)
	}

	out = run(t, graphsdBin, "run", "-layout", layoutDir, "-algorithm", "pr",
		"-iterations", "6", "-checkpoint", ckDir, "-resume", "-top", "1")
	if !strings.Contains(out, "resumed from checkpoint at iteration 6") {
		t.Fatalf("resumed run output: %s", out)
	}

	// -resume needs a checkpoint dir; checkpoints need a graphsd layout.
	out = runExpectFail(t, graphsdBin, "run", "-layout", layoutDir, "-algorithm", "pr", "-resume")
	if !strings.Contains(out, "-resume requires -checkpoint") {
		t.Fatalf("resume error output: %s", out)
	}
	husDir := filepath.Join(dir, "hus")
	run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", husDir, "-p", "4", "-system", "husgraph")
	out = runExpectFail(t, graphsdBin, "run", "-layout", husDir, "-algorithm", "pr", "-checkpoint", ckDir)
	if !strings.Contains(out, "graphsd layouts") {
		t.Fatalf("husgraph checkpoint error output: %s", out)
	}
}
