package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// serveProc is one running `graphsd serve` child: its captured output, the
// announced base URL, and the exit channel.
type serveProc struct {
	cmd  *exec.Cmd
	base string
	done chan error

	mu  sync.Mutex
	buf bytes.Buffer
}

func (p *serveProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

// startServe boots a serve child, drains its output, and waits for the
// address announcement.
func startServe(t *testing.T, args ...string) *serveProc {
	t.Helper()
	p := &serveProc{
		cmd:  exec.Command(graphsdBin, append([]string{"serve", "-listen", "127.0.0.1:0"}, args...)...),
		done: make(chan error, 1),
	}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = p.cmd.Stdout
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		<-p.done
		p.done <- nil // later receivers (and repeated cleanups) don't block
	})

	addrCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var pending []byte
		announced := false
		for {
			n, err := stdout.Read(buf)
			if n > 0 {
				p.mu.Lock()
				p.buf.Write(buf[:n])
				p.mu.Unlock()
				if !announced {
					pending = append(pending, buf[:n]...)
					if m := regexp.MustCompile(`serving on ([^ ]+)`).FindSubmatch(pending); m != nil {
						addrCh <- string(m[1])
						announced = true
					}
				}
			}
			if err != nil {
				if !announced {
					close(addrCh)
				}
				p.done <- p.cmd.Wait()
				return
			}
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatalf("server exited before announcing address:\n%s", p.output())
		}
		p.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("server never announced its address")
	}
	return p
}

// jobStatus is the subset of the status document the restart test reads.
type jobStatus struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Error      string `json:"error"`
	Iterations int    `json:"iterations"`
	Recovered  bool   `json:"recovered"`
	Resumed    bool   `json:"resumed"`
}

func (p *serveProc) submit(t *testing.T, body string) jobStatus {
	t.Helper()
	resp, err := http.Post(p.base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit %s: HTTP %d: %s", body, resp.StatusCode, b)
	}
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	if st.ID == "" {
		t.Fatalf("submit %s: empty job id", body)
	}
	return st
}

func (p *serveProc) status(t *testing.T, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(p.base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return st
}

func (p *serveProc) waitDone(t *testing.T, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := p.status(t, id)
		switch st.State {
		case "done":
			return st
		case "failed", "cancelled", "expired":
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobStatus{}
}

// fullResult fetches the raw JSON of the job's full vertex-value array, for
// byte-exact comparison between runs.
func (p *serveProc) fullResult(t *testing.T, id string) json.RawMessage {
	t.Helper()
	resp, err := http.Get(p.base + "/v1/jobs/" + id + "/result?full=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("result %s: HTTP %d: %s", id, resp.StatusCode, b)
	}
	var out struct {
		Full json.RawMessage `json:"full"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	if len(out.Full) == 0 {
		t.Fatalf("result %s: empty full array", id)
	}
	return out.Full
}

// TestServeSIGKILLRestart kills the real server binary with SIGKILL mid-run
// and restarts it over the same journal directory: the finished job must
// stay finished, the interrupted job must resume from its checkpoint and
// produce byte-identical results to a fresh run of the same request, and
// the recovery line must account for every job.
func TestServeSIGKILLRestart(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	layoutDir := filepath.Join(dir, "layout")
	journalDir := filepath.Join(dir, "journal")
	run(t, graphgenBin, "-kind", "rmat", "-scale", "12", "-edgefactor", "8", "-o", graphPath)
	run(t, graphsdBin, "preprocess", "-graph", graphPath, "-layout", layoutDir, "-p", "4")
	// The hdd profile keeps iterations slow enough that the SIGKILL below
	// cannot race the whole run to completion.
	serveArgs := []string{"-graph", "g=" + layoutDir, "-workers", "1", "-profile", "hdd", "-journal", journalDir}

	p1 := startServe(t, serveArgs...)
	quick := p1.submit(t, `{"graph":"g","algorithm":"bfs","source":1,"max_iterations":2}`)
	p1.waitDone(t, quick.ID)
	long := p1.submit(t, `{"graph":"g","algorithm":"pr"}`)

	// Checkpoints publish after each iteration's status update, so iteration
	// N's checkpoint is durable once the status shows N+1. Wait for 2, then
	// SIGKILL — no drain, no final records, exactly a crash.
	deadline := time.Now().Add(60 * time.Second)
	for p1.status(t, long.ID).Iterations < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never progressed: %+v", long.ID, p1.status(t, long.ID))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := p1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if err := <-p1.done; err == nil {
		t.Fatal("SIGKILLed server exited cleanly?")
	}
	p1.done <- fmt.Errorf("already reaped")

	// Restart over the same journal.
	p2 := startServe(t, serveArgs...)
	recLine := regexp.MustCompile(`journal replayed: (\d+) records; jobs recovered=(\d+) requeued=(\d+) expired=(\d+) lost=(\d+)`)
	m := recLine.FindStringSubmatch(p2.output())
	if m == nil {
		t.Fatalf("no recovery line in restart output:\n%s", p2.output())
	}
	if m[2] != "1" || m[3] != "1" || m[5] != "0" {
		t.Fatalf("recovery line %q: want recovered=1 requeued=1 lost=0", m[0])
	}

	// The finished job survived as terminal; its payload is 410 Gone.
	if st := p2.status(t, quick.ID); st.State != "done" || !st.Recovered {
		t.Fatalf("finished job after restart: %+v", st)
	}
	if resp, err := http.Get(p2.base + "/v1/jobs/" + quick.ID + "/result"); err != nil || resp.StatusCode != http.StatusGone {
		t.Fatalf("recovered result: %v, %v (want 410)", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// The interrupted job resumes from its checkpoint and completes.
	final := p2.waitDone(t, long.ID)
	if !final.Recovered || !final.Resumed {
		t.Fatalf("interrupted job did not resume: %+v", final)
	}
	resumed := p2.fullResult(t, long.ID)

	// A fresh submission of the identical request recomputes the values;
	// they must be byte-identical to the resumed run's.
	fresh := p2.submit(t, `{"graph":"g","algorithm":"pr"}`)
	if fresh.ID == long.ID {
		t.Fatalf("fresh submission reused job ID %s", fresh.ID)
	}
	p2.waitDone(t, fresh.ID)
	if !bytes.Equal(resumed, p2.fullResult(t, fresh.ID)) {
		t.Fatal("resumed results differ from a fresh run of the same request — recovery not bit-identical")
	}

	// Graceful shutdown still works after a recovery.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p2.done:
		out := p2.output()
		p2.done <- nil
		if err != nil {
			t.Fatalf("restarted server exited with error: %v\n%s", err, out)
		}
		if !strings.Contains(out, "shutdown complete") {
			t.Fatalf("no clean shutdown message:\n%s", out)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("restarted server did not exit after SIGTERM")
	}
}
