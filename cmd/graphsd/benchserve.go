package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/graphsd/graphsd/internal/loadgen"
	"github.com/graphsd/graphsd/internal/server"
)

// cmdBenchServe runs the closed-loop serving benchmark against a live
// `graphsd serve` instance and writes the BENCH_serve.json report: p50/p99
// submit-to-done latency, jobs/sec, and per-tenant fairness shares. The CI
// serve-slo job gates on the report's floors.
func cmdBenchServe(args []string) error {
	fs := flag.NewFlagSet("bench-serve", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8090", "server base URL")
	graphName := fs.String("graph", "", "graph to run jobs against")
	algos := fs.String("algorithms", "pr,bfs,cc", "comma-separated algorithm mix")
	workers := fs.Int("workers", 2, "closed-loop workers per tenant")
	burst := fs.Int("burst", 1, "jobs each worker keeps in flight (a deep burst floods the admission queue without extra polling goroutines)")
	duration := fs.Duration("duration", 5*time.Second, "how long to keep submitting")
	vertices := fs.Int("vertices", 0, "graph vertex count, for random job sources (0: always source 0)")
	maxIters := fs.Int("max-iterations", 4, "iteration cap per submitted job (keeps bench jobs short)")
	mutateEvery := fs.Int("mutate-every", 0, "make every Nth operation an edge-mutation batch (0: jobs only; needs a -mutable server)")
	mutateBatch := fs.Int("mutate-batch", 16, "edge inserts per mutation batch")
	tenantsFile := fs.String("tenants", "", "tenants file (same format as serve -tenants): drive one worker pool per tenant, authenticated")
	seed := fs.Int64("seed", 1, "RNG seed for sources and mutation endpoints")
	out := fs.String("out", "", "write the JSON report here (default: stdout only)")
	minJobsPS := fs.Float64("min-jobs-per-sec", 0, "fail unless total jobs/sec reaches this floor")
	minShare := fs.Float64("min-share", 0, "fail unless every tenant's share of completed jobs reaches this floor")
	fs.Parse(args)
	if *graphName == "" {
		return fmt.Errorf("bench-serve: -graph is required")
	}

	opts := loadgen.Options{
		BaseURL:       *url,
		Graph:         *graphName,
		Algorithms:    strings.Split(*algos, ","),
		Workers:       *workers,
		Duration:      *duration,
		NumVertices:   *vertices,
		MaxIterations: *maxIters,
		MutateEvery:   *mutateEvery,
		MutateBatch:   *mutateBatch,
		Seed:          *seed,
	}
	if *tenantsFile != "" {
		ts, err := server.LoadTenantsFile(*tenantsFile)
		if err != nil {
			return fmt.Errorf("bench-serve: %w", err)
		}
		for _, t := range ts {
			opts.Tenants = append(opts.Tenants, loadgen.Tenant{Name: t.Name, Token: t.Token, Burst: *burst})
		}
	} else {
		opts.Tenants = []loadgen.Tenant{{Name: "default", Burst: *burst}}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("graphsd: bench-serve: %d tenant(s) x %d workers against %s for %v\n",
		max(1, len(opts.Tenants)), *workers, *url, *duration)
	rep, err := loadgen.Run(ctx, opts)
	if err != nil {
		return fmt.Errorf("bench-serve: %w", err)
	}

	fmt.Printf("bench-serve: %d jobs in %.1fs = %.1f jobs/s, p50=%.1fms p99=%.1fms, %d mutation batches, %d rejected, %d errors\n",
		rep.Jobs, rep.DurationS, rep.JobsPS, rep.P50ms, rep.P99ms, rep.Mutates, rep.Rejected, rep.Errors)
	for _, t := range rep.Tenants {
		fmt.Printf("  tenant %-12s %6d jobs (share %.2f) %.1f jobs/s p50=%.1fms p99=%.1fms rejected=%d errors=%d\n",
			t.Name, t.Jobs, t.Share, t.JobsPS, t.P50ms, t.P99ms, t.Rejected, t.Errors)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("bench-serve: writing report: %w", err)
		}
		fmt.Printf("bench-serve: report written to %s\n", *out)
	}

	if *minJobsPS > 0 && rep.JobsPS < *minJobsPS {
		return fmt.Errorf("bench-serve: SLO violation: %.1f jobs/s below the %.1f floor", rep.JobsPS, *minJobsPS)
	}
	if *minShare > 0 && rep.MinShare < *minShare {
		return fmt.Errorf("bench-serve: fairness violation: min tenant share %.2f below the %.2f floor", rep.MinShare, *minShare)
	}
	return nil
}
