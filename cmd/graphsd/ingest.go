package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// ingestMutation mirrors the server's mutation wire format.
type ingestMutation struct {
	Op     string  `json:"op"`
	Src    uint32  `json:"src"`
	Dst    uint32  `json:"dst"`
	Weight float32 `json:"weight,omitempty"`
}

// cmdIngest streams an edge-mutation file into a running mutable server.
// Line formats (one mutation per line, '#' comments and blanks skipped):
//
//	+ src dst [weight]   insert
//	- src dst            delete
//	src dst [weight]     insert (bare edge-list lines ingest as inserts)
//
// Mutations are batched; each 200 response means that batch is fsynced in
// the server's WAL, so a kill -9 after the last acknowledged batch loses
// nothing.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	serverURL := fs.String("server", "http://127.0.0.1:8090", "base URL of a running 'graphsd serve -mutable'")
	graphName := fs.String("graph", "", "target graph name (as registered with serve -graph)")
	file := fs.String("file", "-", "mutation file ('-': stdin)")
	batch := fs.Int("batch", 1000, "mutations per request")
	fs.Parse(args)
	if *graphName == "" {
		return fmt.Errorf("ingest: -graph is required")
	}
	if *batch < 1 {
		return fmt.Errorf("ingest: -batch must be positive")
	}
	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	url := strings.TrimRight(*serverURL, "/") + "/v1/graphs/" + *graphName + "/edges"
	client := &http.Client{Timeout: 30 * time.Second}
	var (
		pending  []ingestMutation
		sent     int64
		batches  int64
		started  = time.Now()
		flushErr = func(muts []ingestMutation) error {
			body, err := json.Marshal(map[string]any{"mutations": muts})
			if err != nil {
				return err
			}
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				return fmt.Errorf("ingest: %w (is 'graphsd serve -mutable' running?)", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				return fmt.Errorf("ingest: server rejected batch: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
			}
			sent += int64(len(muts))
			batches++
			return nil
		}
	)

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m, err := parseMutationLine(line)
		if err != nil {
			return fmt.Errorf("ingest: line %d: %w", lineNo, err)
		}
		pending = append(pending, m)
		if len(pending) >= *batch {
			if err := flushErr(pending); err != nil {
				return err
			}
			pending = pending[:0]
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(pending) > 0 {
		if err := flushErr(pending); err != nil {
			return err
		}
	}
	el := time.Since(started)
	rate := float64(sent) / el.Seconds()
	fmt.Printf("graphsd: ingested %d mutations in %d batches (%.0f/s)\n", sent, batches, rate)
	return nil
}

// parseMutationLine decodes one ingest line into a wire mutation.
func parseMutationLine(line string) (ingestMutation, error) {
	fields := strings.Fields(line)
	m := ingestMutation{Op: "insert"}
	switch fields[0] {
	case "+":
		fields = fields[1:]
	case "-":
		m.Op = "delete"
		fields = fields[1:]
	}
	if len(fields) < 2 || len(fields) > 3 {
		return m, fmt.Errorf("want [+|-] src dst [weight], got %q", line)
	}
	src, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return m, fmt.Errorf("bad src %q", fields[0])
	}
	dst, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return m, fmt.Errorf("bad dst %q", fields[1])
	}
	m.Src, m.Dst = uint32(src), uint32(dst)
	if len(fields) == 3 {
		if m.Op == "delete" {
			return m, fmt.Errorf("delete takes no weight: %q", line)
		}
		w, err := strconv.ParseFloat(fields[2], 32)
		if err != nil {
			return m, fmt.Errorf("bad weight %q", fields[2])
		}
		m.Weight = float32(w)
	}
	return m, nil
}
