package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var benchBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "graphbench-e2e-*")
	if err != nil {
		panic(err)
	}
	benchBin = filepath.Join(dir, "graphbench")
	out, err := exec.Command("go", "build", "-o", benchBin,
		"github.com/graphsd/graphsd/cmd/graphbench").CombinedOutput()
	if err != nil {
		panic(string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestListExperiments(t *testing.T) {
	out, err := exec.Command(benchBin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, id := range []string{"table3", "fig5", "fig10", "fig12", "ext-storage"} {
		if !strings.Contains(string(out), id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestQuickExperiment(t *testing.T) {
	out, err := exec.Command(benchBin, "-quick", "-experiment", "table3").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "twitter-sim") {
		t.Fatalf("table3 output: %s", out)
	}
}

func TestDatasetFilter(t *testing.T) {
	out, err := exec.Command(benchBin, "-quick", "-experiment", "fig8",
		"-datasets", "twitter-sim").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "twitter-sim") || strings.Contains(s, "uk-sim") {
		t.Fatalf("filter not applied:\n%s", s)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	if out, err := exec.Command(benchBin, "-experiment", "fig99").CombinedOutput(); err == nil {
		t.Fatalf("unknown experiment succeeded:\n%s", out)
	}
	if out, err := exec.Command(benchBin, "-profile", "floppy").CombinedOutput(); err == nil {
		t.Fatalf("unknown profile succeeded:\n%s", out)
	}
}
