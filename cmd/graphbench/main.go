// Command graphbench regenerates the paper's evaluation tables and figures
// (Table 3, Table 4, Figures 5–12) over the synthetic datasets and the
// simulated disk substrate.
//
// Usage:
//
//	graphbench -experiment all [-quick] [-seed N] [-workdir DIR]
//	graphbench -experiment fig5 -datasets twitter-sim,uk-sim
//	graphbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/graphsd/graphsd/internal/harness"
	"github.com/graphsd/graphsd/internal/storage"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (table3, fig5..fig12) or 'all'")
		list       = flag.Bool("list", false, "list available experiments and exit")
		quick      = flag.Bool("quick", false, "use ~16x smaller datasets for a fast run")
		seed       = flag.Int64("seed", 1, "generator seed")
		workdir    = flag.String("workdir", "", "layout scratch directory (default: temp dir)")
		datasets   = flag.String("datasets", "", "comma-separated dataset filter (e.g. twitter-sim,uk-sim)")
		profile    = flag.String("profile", "scaled-hdd", "disk model: scaled-hdd, hdd, ssd")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var prof storage.Profile
	switch *profile {
	case "scaled-hdd":
		prof = storage.ScaledHDD
	case "hdd":
		prof = storage.HDD
	case "ssd":
		prof = storage.SSD
	case "pmem":
		prof = storage.PMem
	default:
		fatalf("unknown profile %q (have scaled-hdd, hdd, ssd, pmem)", *profile)
	}

	dir := *workdir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "graphbench-*")
		if err != nil {
			fatalf("creating workdir: %v", err)
		}
		defer os.RemoveAll(dir)
	}

	cfg := &harness.Config{
		WorkDir: dir,
		Seed:    *seed,
		Quick:   *quick,
		Profile: &prof,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	if *experiment == "all" {
		if err := harness.RunAll(cfg, os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	exp, err := harness.ByID(*experiment)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("### %s — %s\n\n", exp.ID, exp.Title)
	if err := exp.Run(cfg, os.Stdout); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphbench: "+format+"\n", args...)
	os.Exit(1)
}
